//! Consistency between the functional runtime and the analytical cost model:
//! the model's qualitative claims (who moves more bytes, who mobilises more
//! TDSs, who converges in more steps) must also hold in the simulator.

mod common;

use tdsql_core::access::AccessPolicy;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::runtime::{SimBuilder, SimWorld};
use tdsql_core::stats::Phase;
use tdsql_core::workload::{smart_meters, SmartMeterConfig};
use tdsql_costmodel::ed_hist::EdHistModel;
use tdsql_costmodel::noise::NoiseModel;
use tdsql_costmodel::s_agg::SAggModel;
use tdsql_costmodel::{ModelParams, ProtocolModel};
use tdsql_crypto::credential::Role;
use tdsql_sql::parser::parse_query;

fn run(kind: ProtocolKind, n_tds: usize, districts: usize, seed: u64) -> SimWorld {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds,
        districts,
        readings_per_tds: 1,
        ..Default::default()
    });
    let mut world = SimBuilder::new()
        .seed(seed)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");
    let query =
        parse_query("SELECT c.district, COUNT(*) FROM consumer c GROUP BY c.district").unwrap();
    // Small chunks so the iterative structure is visible at test scale.
    let mut params = ProtocolParams::new(kind);
    params.chunk = 16;
    params.alpha = 4;
    world.run_query(&querier, &query, params).unwrap();
    world
}

#[test]
fn noise_load_dominates_simulated_and_modelled() {
    let s_agg = run(ProtocolKind::SAgg, 60, 4, 400);
    let noisy = run(ProtocolKind::RnfNoise { nf: 10 }, 60, 4, 400);
    assert!(
        noisy.stats.load_bytes() > 3 * s_agg.stats.load_bytes(),
        "sim: noise {} vs s_agg {}",
        noisy.stats.load_bytes(),
        s_agg.stats.load_bytes()
    );
    let p = ModelParams::default();
    let m_noise = NoiseModel { nf: Some(10.0) }.metrics(&p);
    let m_sagg = SAggModel.metrics(&p);
    assert!(m_noise.load_bytes > 3.0 * m_sagg.load_bytes, "model agrees");
}

#[test]
fn s_agg_iterates_more_with_more_tuples() {
    let small = run(ProtocolKind::SAgg, 30, 3, 401);
    let large = run(ProtocolKind::SAgg, 150, 3, 401);
    assert!(
        large.stats.phase(Phase::Aggregation).steps > small.stats.phase(Phase::Aggregation).steps,
        "log_α(Nt/G) grows with Nt: {} vs {}",
        large.stats.phase(Phase::Aggregation).steps,
        small.stats.phase(Phase::Aggregation).steps
    );
}

#[test]
fn tag_protocols_mobilise_more_tds_at_large_g() {
    // With many groups, ED_Hist/noise fan out per group while S_Agg funnels
    // into a single reducer chain — both in the model (Fig. 10a) and here.
    let g = 12;
    let s_agg = run(ProtocolKind::SAgg, 90, g, 402);
    let ed = run(ProtocolKind::EdHist { buckets: 6 }, 90, g, 402);
    let s_agg_p = s_agg.stats.phase(Phase::Aggregation).participating_tds();
    let ed_p = ed.stats.phase(Phase::Aggregation).participating_tds();
    assert!(
        ed_p >= s_agg_p,
        "ED_Hist aggregation parallelism {ed_p} vs S_Agg {s_agg_p}"
    );
}

#[test]
fn device_profile_matches_paper_tuple_time() {
    // Fig. 9 calibration: the default profile reproduces Tt ≈ 16 µs and the
    // transfer-dominated breakdown the whole model rests on.
    let d = tdsql_costmodel::DeviceProfile::default();
    let b = d.partition_breakdown(4096.0);
    assert!(b.transfer / b.total() > 0.5, "transfer dominates (Fig. 9b)");
    let simulated_tt = d.tuple_time();
    let p = ModelParams::default();
    assert!((simulated_tt - p.tt).abs() / p.tt < 0.5);
}

#[test]
fn simulated_bytes_scale_with_population() {
    let small = run(ProtocolKind::SAgg, 30, 3, 403);
    let large = run(ProtocolKind::SAgg, 120, 3, 403);
    let ratio = large.stats.load_bytes() as f64 / small.stats.load_bytes().max(1) as f64;
    assert!(
        ratio > 2.0 && ratio < 8.0,
        "≈linear in Nt (got ×{ratio:.2})"
    );
}

#[test]
fn collection_rounds_match_the_coverage_model() {
    // With 20% connectivity and no SIZE bound, the simulator should need
    // roughly ln(1−q)/ln(1−p) rounds to reach full coverage; check the
    // SIZE-bounded case against the closed form.
    use tdsql_core::connectivity::Connectivity;
    let n_tds = 200usize;
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds,
        districts: 3,
        readings_per_tds: 1,
        ..Default::default()
    });
    let mut world = SimBuilder::new()
        .seed(404)
        .connectivity(Connectivity::fraction(0.2))
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("q", "supplier");
    // SIZE 100 = 50% coverage → model predicts ≈ 3.1 rounds at p = 0.2.
    let query = parse_query("SELECT c.cid FROM consumer c SIZE 100").unwrap();
    world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    let simulated = world.stats.phase(Phase::Collection).steps as f64;
    let predicted = tdsql_costmodel::collection::rounds_to_size(0.2, n_tds as u64, 100);
    assert!(
        (simulated - predicted).abs() <= 2.0,
        "simulated {simulated} vs predicted {predicted:.2}"
    );
}

#[test]
fn model_crossover_reflected_in_paper_defaults() {
    // Not a simulation check: pin the headline crossover numbers the README
    // quotes. S_Agg ≈ 0.4 s and ED_Hist ≈ 1 ms at the paper's defaults.
    let p = ModelParams::default();
    let sa = SAggModel.metrics(&p);
    let ed = EdHistModel.metrics(&p);
    assert!(sa.tq > 0.2 && sa.tq < 0.8, "S_Agg T_Q = {}", sa.tq);
    assert!(ed.tq > 2e-4 && ed.tq < 5e-3, "ED_Hist T_Q = {}", ed.tq);
}
