//! The Trusted Data Server — the only trusted element of the architecture.
//!
//! A TDS holds its owner's data and the cryptographic material (`k1`, `k2`,
//! the bucket-hash key, the authority verification key). Its code "cannot be
//! tampered, even by the TDS holder herself": in this reproduction the trust
//! boundary is the type — everything a [`Tds`] ever returns is encrypted or
//! deliberately public, and the SSI/runtime only handle those outputs.

use crate::bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;
use tdsql_crypto::rng::seq::SliceRandom;
use tdsql_crypto::rng::Rng;
use tdsql_crypto::rng::StdRng;

use tdsql_crypto::{BucketHasher, DetCipher, KeyRing, NDetCipher};
use tdsql_sql::aggregate::AggState;
use tdsql_sql::ast::Query;
use tdsql_sql::engine::{AggregatePlan, Database, JoinedRelation};
use tdsql_sql::expr::{eval_predicate, AggContext};
use tdsql_sql::parser::parse_query;
use tdsql_sql::value::{GroupKey, Value};

use crate::access::AccessPolicy;
use crate::error::{ProtocolError, Result};
use crate::histogram::Histogram;
use crate::message::{GroupTag, QueryEnvelope, StoredTuple};
use crate::protocol::{ProtocolKind, ProtocolParams};
use crate::tuple_codec::{AggInput, PartialAggBatch, PlainTuple, ResultRow};

/// Role name reserved for the infrastructure's own discovery queries; the
/// TDS firmware answers these regardless of the installed policy (the
/// discovery result never leaves the `k2` trust domain).
pub const SYSTEM_ROLE: &str = "__system";

/// A TDS's decrypted, validated view of one posted query.
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// SSI query id.
    pub query_id: u64,
    /// The decrypted query.
    pub query: Query,
    /// Aggregation plan, when the query aggregates.
    pub plan: Option<AggregatePlan>,
    /// Did the querier pass credential + access-control checks?
    /// When false the TDS still participates — with dummies only.
    pub authorized: bool,
    /// Protocol parameters (public recipe + k2-protected discovery data).
    pub params: ProtocolParams,
}

/// How a reduce step tags its outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetagMode {
    /// One untagged batch per partition (S_Agg: the SSI stays blind).
    None,
    /// One tagged tuple per group, tag = `Det_Enc_k2(A_G)` (noise protocols
    /// and the hand-over step of ED_Hist).
    DetPerGroup,
}

/// Destination of finalized rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultDest {
    /// Encrypt under `k1` for the querier (normal queries).
    Querier,
    /// Encrypt under `k2` for other TDSs (discovery sub-protocol).
    Tds,
}

/// The full cipher suite derived from one [`KeyRing`].
///
/// Building this is the expensive part of provisioning a TDS: four AES
/// key-schedule expansions plus four HMAC ipad/opad precomputations. All
/// TDSs burned from the same ring use *identical* cipher material, so the
/// context is built once per ring and shared via [`std::sync::Arc`] —
/// key-schedule construction is O(rings), not O(TDS population).
#[derive(Clone)]
pub struct CipherContext {
    /// `k1` cipher — querier ↔ TDS messages.
    pub k1: NDetCipher,
    /// `k2` cipher — TDS ↔ TDS messages relayed by the SSI.
    pub k2: NDetCipher,
    /// Deterministic cipher under `k2` material — group tags.
    pub det2: DetCipher,
    /// Keyed bucket-id hash — ED_Hist tags.
    pub bucket_hasher: BucketHasher,
}

impl CipherContext {
    /// Derive every cipher from a key ring, once.
    pub fn new(ring: &KeyRing) -> Self {
        Self {
            k1: NDetCipher::new(&ring.k1),
            k2: NDetCipher::new(&ring.k2),
            det2: DetCipher::new(&ring.k2),
            bucket_hasher: BucketHasher::new(&ring.hash),
        }
    }

    /// Derive and wrap for sharing across a TDS population.
    pub fn shared(ring: &KeyRing) -> Arc<Self> {
        Arc::new(Self::new(ring))
    }
}

impl std::fmt::Debug for CipherContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key-derived material.
        write!(f, "CipherContext {{ .. }}")
    }
}

/// The Trusted Data Server.
pub struct Tds {
    /// Stable identifier.
    pub id: u64,
    ciphers: Arc<CipherContext>,
    authority_key: [u8; 32],
    db: Database,
    policy: AccessPolicy,
}

impl Tds {
    /// Provision a TDS at burn time. Derives a private cipher context;
    /// population-scale provisioning should build one [`CipherContext`]
    /// per ring and use [`Tds::with_ciphers`] instead.
    pub fn new(
        id: u64,
        ring: &KeyRing,
        authority_key: [u8; 32],
        db: Database,
        policy: AccessPolicy,
    ) -> Self {
        Self::with_ciphers(id, CipherContext::shared(ring), authority_key, db, policy)
    }

    /// Provision a TDS sharing an already-derived cipher context.
    pub fn with_ciphers(
        id: u64,
        ciphers: Arc<CipherContext>,
        authority_key: [u8; 32],
        db: Database,
        policy: AccessPolicy,
    ) -> Self {
        Self {
            id,
            ciphers,
            authority_key,
            db,
            policy,
        }
    }

    /// Install a new key ring (epoch rotation). The authority key and the
    /// local data are untouched; all ciphers are re-derived.
    pub fn rekey(&mut self, ring: &KeyRing) {
        self.ciphers = CipherContext::shared(ring);
    }

    /// Epoch rotation sharing one already-derived context across the
    /// population (the O(rings) path).
    pub fn rekey_shared(&mut self, ciphers: Arc<CipherContext>) {
        self.ciphers = ciphers;
    }

    /// The local database (mutable: data acquisition is application-defined).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Read access to the local database (test inspection).
    pub fn db(&self) -> &Database {
        &self.db
    }

    // -- step 3: download, decrypt and validate the query ------------------

    /// Open a posted query: decrypt with `k1`, verify the credential against
    /// the authority key and the current round, evaluate the access policy.
    pub fn open_query(
        &self,
        envelope: &QueryEnvelope,
        params: ProtocolParams,
        now_round: u64,
    ) -> Result<QueryContext> {
        let sql_bytes = self.ciphers.k1.decrypt(&envelope.enc_query)?;
        let sql = String::from_utf8(sql_bytes)
            .map_err(|_| ProtocolError::Codec("query is not UTF-8".into()))?;
        let query = parse_query(&sql)?;
        let credential_ok = envelope
            .credential
            .verify(&self.authority_key, now_round)
            .is_ok();
        let is_system = envelope.credential.role.0 == SYSTEM_ROLE;
        let authorized =
            credential_ok && (is_system || self.policy.allows(&envelope.credential.role, &query));
        let plan = if query.is_aggregate() {
            Some(AggregatePlan::new(&query)?)
        } else {
            None
        };
        Ok(QueryContext {
            query_id: envelope.query_id,
            query,
            plan,
            authorized,
            params,
        })
    }

    // -- step 4 / 4': collection phase --------------------------------------

    /// Evaluate the query locally and produce the collection-phase tuples.
    /// Unauthorized queriers and empty local results yield a dummy, so the
    /// SSI cannot learn selectivity or denial.
    pub fn collect(&self, ctx: &QueryContext, rng: &mut StdRng) -> Result<Vec<StoredTuple>> {
        match (&ctx.plan, ctx.params.kind) {
            (None, _) => self.collect_plain(ctx, rng),
            (Some(plan), kind) => self.collect_agg(ctx, plan, kind, rng),
        }
    }

    fn collect_plain(&self, ctx: &QueryContext, rng: &mut StdRng) -> Result<Vec<StoredTuple>> {
        let mut tuples = Vec::new();
        if ctx.authorized {
            let out = tdsql_sql::engine::execute(&self.db, &ctx.query)?;
            for row in out.rows {
                tuples.push(self.seal_k2(
                    GroupTag::None,
                    PlainTuple::Row(row).encode(ctx.params.pad)?,
                    rng,
                ));
            }
        }
        if tuples.is_empty() {
            tuples.push(self.seal_k2(
                GroupTag::None,
                PlainTuple::Dummy.encode(ctx.params.pad)?,
                rng,
            ));
        }
        Ok(tuples)
    }

    fn collect_agg(
        &self,
        ctx: &QueryContext,
        plan: &AggregatePlan,
        kind: ProtocolKind,
        rng: &mut StdRng,
    ) -> Result<Vec<StoredTuple>> {
        let mut inputs: Vec<AggInput> = Vec::new();
        if ctx.authorized {
            let rel = JoinedRelation::bind(&self.db, &ctx.query.from)?;
            rel.for_each_row(&self.db, |rows| {
                let env = rel.env(rows);
                if let Some(w) = &ctx.query.where_clause {
                    if !eval_predicate(w, &env, &AggContext::Forbidden)? {
                        return Ok(());
                    }
                }
                let key = plan.group_key(&env)?;
                let agg_inputs = plan.agg_inputs(&env)?;
                inputs.push(AggInput {
                    key,
                    inputs: agg_inputs,
                    fake: false,
                });
                Ok(())
            })?;
        }
        // Dummies / fakes per protocol.
        let mut out = Vec::new();
        match kind {
            ProtocolKind::Basic => {
                return Err(ProtocolError::Unsupported(
                    "basic protocol cannot run aggregate queries".into(),
                ))
            }
            ProtocolKind::SAgg => {
                if inputs.is_empty() {
                    inputs.push(self.dummy_input(ctx, rng));
                }
                for t in inputs {
                    out.push(self.seal_k2(GroupTag::None, t.encode(ctx.params.pad)?, rng));
                }
            }
            ProtocolKind::RnfNoise { nf } => {
                let n_fakes = nf as usize * inputs.len().max(1);
                let fakes = self.random_fakes(ctx, n_fakes, rng);
                if inputs.is_empty() {
                    // Denied/empty: one extra fake stands in for the tuple.
                    inputs.push(self.noise_fake(ctx, rng));
                }
                inputs.extend(fakes);
                for t in inputs {
                    let tag = GroupTag::Det(Bytes::from(self.ciphers.det2.encrypt(&t.key.0)));
                    out.push(self.seal_k2(tag, t.encode(ctx.params.pad)?, rng));
                }
            }
            ProtocolKind::CNoise => {
                // One fake per domain value the TDS does NOT hold: the
                // resulting distribution is flat by construction.
                let mut held: std::collections::BTreeSet<GroupKey> =
                    inputs.iter().map(|t| t.key.clone()).collect();
                let domain = ctx.params.noise_domain.clone();
                let mut all = inputs;
                for key in &domain {
                    if !held.contains(key) {
                        held.insert(key.clone());
                        all.push(AggInput {
                            key: key.clone(),
                            inputs: self.fake_inputs(ctx, rng),
                            fake: true,
                        });
                    }
                }
                if all.is_empty() {
                    all.push(self.dummy_input(ctx, rng));
                }
                for t in all {
                    let tag = GroupTag::Det(Bytes::from(self.ciphers.det2.encrypt(&t.key.0)));
                    out.push(self.seal_k2(tag, t.encode(ctx.params.pad)?, rng));
                }
            }
            ProtocolKind::EdHist { .. } => {
                let hist = ctx.params.histogram.as_ref().ok_or_else(|| {
                    ProtocolError::Protocol("ED_Hist requires a discovered histogram".into())
                })?;
                if inputs.is_empty() {
                    // Dummy lands in a random bucket.
                    let mut d = self.dummy_input(ctx, rng);
                    d.fake = true;
                    let bucket = rng.gen_range(0..hist.n_buckets());
                    let tag = GroupTag::Bucket(self.ciphers.bucket_hasher.hash(bucket));
                    out.push(self.seal_k2(tag, d.encode(ctx.params.pad)?, rng));
                } else {
                    for t in inputs {
                        let bucket = hist.bucket_of(&t.key);
                        let tag = GroupTag::Bucket(self.ciphers.bucket_hasher.hash(bucket));
                        out.push(self.seal_k2(tag, t.encode(ctx.params.pad)?, rng));
                    }
                }
            }
        }
        Ok(out)
    }

    fn dummy_input(&self, ctx: &QueryContext, rng: &mut StdRng) -> AggInput {
        // A dummy with an empty key: skipped by reducers before any key use.
        let _ = ctx;
        let _ = rng;
        AggInput {
            key: GroupKey(Vec::new()),
            inputs: Vec::new(),
            fake: true,
        }
    }

    fn noise_fake(&self, ctx: &QueryContext, rng: &mut StdRng) -> AggInput {
        ctx.params
            .noise_domain
            .choose(rng)
            .map(|key| AggInput {
                key: key.clone(),
                inputs: self.fake_inputs(ctx, rng),
                fake: true,
            })
            .unwrap_or_else(|| self.dummy_input(ctx, rng))
    }

    fn random_fakes(&self, ctx: &QueryContext, n: usize, rng: &mut StdRng) -> Vec<AggInput> {
        (0..n).map(|_| self.noise_fake(ctx, rng)).collect()
    }

    fn fake_inputs(&self, ctx: &QueryContext, rng: &mut StdRng) -> Vec<Value> {
        // Plausible-looking inputs; they are filtered out before aggregation
        // so their values only need to keep the payload size uniform.
        let n = ctx.plan.as_ref().map(|p| p.agg_calls.len()).unwrap_or(0);
        (0..n)
            .map(|_| Value::Float(rng.gen_range(0.0..1.0)))
            .collect()
    }

    // -- steps 6–8: aggregation phase ---------------------------------------

    /// Reduce a partition of collection tuples into partial aggregations.
    pub fn reduce_inputs(
        &self,
        ctx: &QueryContext,
        partition: &[StoredTuple],
        retag: RetagMode,
        rng: &mut StdRng,
    ) -> Result<Vec<StoredTuple>> {
        let plan = self.require_plan(ctx)?;
        let mut groups: BTreeMap<GroupKey, Vec<AggState>> = BTreeMap::new();
        for tuple in partition {
            let plain = self.ciphers.k2.decrypt(&tuple.blob)?;
            let input = AggInput::decode(&plain)?;
            if input.fake {
                continue;
            }
            let states = groups
                .entry(input.key)
                .or_insert_with(|| plan.init_states());
            plan.update_states(states, &input.inputs)?;
        }
        self.emit_groups(ctx, groups, retag, rng)
    }

    /// Merge a partition of partial-aggregation batches.
    pub fn reduce_partials(
        &self,
        ctx: &QueryContext,
        partition: &[StoredTuple],
        retag: RetagMode,
        rng: &mut StdRng,
    ) -> Result<Vec<StoredTuple>> {
        let plan = self.require_plan(ctx)?;
        let mut groups: BTreeMap<GroupKey, Vec<AggState>> = BTreeMap::new();
        for tuple in partition {
            let plain = self.ciphers.k2.decrypt(&tuple.blob)?;
            let batch = PartialAggBatch::decode(&plain)?;
            for (key, states) in batch.entries {
                match groups.entry(key) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(states);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        plan.merge_states(e.get_mut(), &states)?;
                    }
                }
            }
        }
        self.emit_groups(ctx, groups, retag, rng)
    }

    fn emit_groups(
        &self,
        ctx: &QueryContext,
        groups: BTreeMap<GroupKey, Vec<AggState>>,
        retag: RetagMode,
        rng: &mut StdRng,
    ) -> Result<Vec<StoredTuple>> {
        let _ = ctx;
        match retag {
            RetagMode::None => {
                let batch = PartialAggBatch {
                    entries: groups.into_iter().collect(),
                };
                Ok(vec![self.seal_k2(GroupTag::None, batch.encode()?, rng)])
            }
            RetagMode::DetPerGroup => groups
                .into_iter()
                .map(|(key, states)| {
                    let tag = GroupTag::Det(Bytes::from(self.ciphers.det2.encrypt(&key.0)));
                    let batch = PartialAggBatch {
                        entries: vec![(key, states)],
                    };
                    Ok(self.seal_k2(tag, batch.encode()?, rng))
                })
                .collect(),
        }
    }

    // -- steps 9–12: filtering phase -----------------------------------------

    /// Basic protocol: drop dummies and re-encrypt true rows under `k1`.
    pub fn filter_plain(
        &self,
        ctx: &QueryContext,
        partition: &[StoredTuple],
        rng: &mut StdRng,
    ) -> Result<Vec<Bytes>> {
        let _ = ctx;
        let mut out = Vec::new();
        for tuple in partition {
            let plain = self.ciphers.k2.decrypt(&tuple.blob)?;
            match PlainTuple::decode(&plain)? {
                PlainTuple::Dummy => {}
                PlainTuple::Row(values) => {
                    out.push(Bytes::from(
                        self.ciphers.k1.encrypt(rng, &ResultRow(values).encode()?),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Aggregate protocols: evaluate HAVING, project the SELECT list, and
    /// encrypt final rows for their destination.
    pub fn finalize_groups(
        &self,
        ctx: &QueryContext,
        partition: &[StoredTuple],
        dest: ResultDest,
        rng: &mut StdRng,
    ) -> Result<Vec<Bytes>> {
        let plan = self.require_plan(ctx)?;
        let mut out = Vec::new();
        for tuple in partition {
            let plain = self.ciphers.k2.decrypt(&tuple.blob)?;
            let batch = PartialAggBatch::decode(&plain)?;
            for (key, states) in &batch.entries {
                if !plan.having_passes(key, states)? {
                    continue;
                }
                let row = plan.project(key, states)?;
                let encoded = ResultRow(row).encode()?;
                let sealed = match dest {
                    ResultDest::Querier => self.ciphers.k1.encrypt(rng, &encoded),
                    ResultDest::Tds => self.ciphers.k2.encrypt(rng, &encoded),
                };
                out.push(Bytes::from(sealed));
            }
        }
        Ok(out)
    }

    /// Decrypt `k2`-sealed result rows (discovery results, readable only
    /// inside the TDS trust domain).
    pub fn open_k2_rows(&self, blobs: &[Bytes]) -> Result<Vec<Vec<Value>>> {
        blobs
            .iter()
            .map(|b| {
                let plain = self.ciphers.k2.decrypt(b)?;
                Ok(ResultRow::decode(&plain)?.0)
            })
            .collect()
    }

    /// Seal a histogram for SSI-side caching under `k2`.
    pub fn seal_histogram(&self, hist: &Histogram, rng: &mut StdRng) -> Bytes {
        Bytes::from(self.ciphers.k2.encrypt(rng, &hist.encode()))
    }

    /// Open a `k2`-sealed histogram.
    pub fn open_histogram(&self, blob: &Bytes) -> Result<Histogram> {
        let plain = self.ciphers.k2.decrypt(blob)?;
        Histogram::decode(&plain).ok_or_else(|| ProtocolError::Codec("corrupt histogram".into()))
    }

    fn require_plan<'a>(&self, ctx: &'a QueryContext) -> Result<&'a AggregatePlan> {
        ctx.plan.as_ref().ok_or_else(|| {
            ProtocolError::Unsupported("aggregation step on a non-aggregate query".into())
        })
    }

    fn seal_k2(&self, tag: GroupTag, plain: Vec<u8>, rng: &mut StdRng) -> StoredTuple {
        StoredTuple {
            tag,
            blob: Bytes::from(self.ciphers.k2.encrypt(rng, &plain)),
        }
    }
}

impl std::fmt::Debug for Tds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tds {{ id: {} }}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdsql_crypto::credential::{CredentialSigner, Role};
    use tdsql_crypto::rng::SeedableRng;
    use tdsql_sql::ast::SizeClause;
    use tdsql_sql::schema::{Column, TableSchema};
    use tdsql_sql::value::DataType;

    fn make_tds(id: u64, rows: &[(i64, f64, &str)]) -> (Tds, CredentialSigner, KeyRing) {
        let ring = KeyRing::derive(b"test-master");
        let signer = CredentialSigner::new(b"authority");
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "power",
            vec![
                Column::new("cid", DataType::Int),
                Column::new("cons", DataType::Float),
                Column::new("district", DataType::Str),
            ],
        ));
        for (cid, cons, d) in rows {
            db.insert(
                "power",
                vec![
                    Value::Int(*cid),
                    Value::Float(*cons),
                    Value::Str(d.to_string()),
                ],
            )
            .unwrap();
        }
        let policy = AccessPolicy::allow_all(Role::new("supplier"));
        (
            Tds::new(id, &ring, signer.verification_key(), db, policy),
            signer,
            ring,
        )
    }

    fn envelope(
        ring: &KeyRing,
        signer: &CredentialSigner,
        sql: &str,
        kind: ProtocolKind,
        role: &str,
    ) -> QueryEnvelope {
        let k1 = NDetCipher::new(&ring.k1);
        let mut rng = StdRng::seed_from_u64(42);
        QueryEnvelope {
            query_id: 0,
            enc_query: Bytes::from(k1.encrypt(&mut rng, sql.as_bytes())),
            credential: signer.issue("energy-co", Role::new(role), u64::MAX),
            size: SizeClause::default(),
            protocol: kind,
            target: crate::message::QueryTarget::Crowd,
        }
    }

    #[test]
    fn open_query_authorized() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT AVG(cons) FROM power GROUP BY district",
            ProtocolKind::SAgg,
            "supplier",
        );
        let ctx = tds
            .open_query(&env, ProtocolParams::new(ProtocolKind::SAgg), 0)
            .unwrap();
        assert!(ctx.authorized);
        assert!(ctx.plan.is_some());
    }

    #[test]
    fn open_query_unauthorized_still_participates() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT AVG(cons) FROM power GROUP BY district",
            ProtocolKind::SAgg,
            "stranger",
        );
        let ctx = tds
            .open_query(&env, ProtocolParams::new(ProtocolKind::SAgg), 0)
            .unwrap();
        assert!(!ctx.authorized);
        // Collection still yields (dummy) output.
        let mut rng = StdRng::seed_from_u64(1);
        let tuples = tds.collect(&ctx, &mut rng).unwrap();
        assert_eq!(tuples.len(), 1);
    }

    #[test]
    fn system_role_bypasses_policy() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT COUNT(*) FROM power GROUP BY district",
            ProtocolKind::SAgg,
            SYSTEM_ROLE,
        );
        let ctx = tds
            .open_query(&env, ProtocolParams::new(ProtocolKind::SAgg), 0)
            .unwrap();
        assert!(ctx.authorized);
    }

    #[test]
    fn collect_and_reduce_s_agg() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north"), (2, 4.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT district, AVG(cons) FROM power GROUP BY district",
            ProtocolKind::SAgg,
            "supplier",
        );
        let ctx = tds
            .open_query(&env, ProtocolParams::new(ProtocolKind::SAgg), 0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tuples = tds.collect(&ctx, &mut rng).unwrap();
        assert_eq!(tuples.len(), 2);
        assert!(tuples.iter().all(|t| t.tag == GroupTag::None));

        let reduced = tds
            .reduce_inputs(&ctx, &tuples, RetagMode::None, &mut rng)
            .unwrap();
        assert_eq!(reduced.len(), 1);
        let finalized = tds
            .finalize_groups(&ctx, &reduced, ResultDest::Querier, &mut rng)
            .unwrap();
        assert_eq!(finalized.len(), 1);

        // Decrypt as the querier would.
        let k1 = NDetCipher::new(&ring.k1);
        let row = ResultRow::decode(&k1.decrypt(&finalized[0]).unwrap()).unwrap();
        assert_eq!(row.0, vec![Value::Str("north".into()), Value::Float(3.0)]);
    }

    #[test]
    fn noise_fakes_are_filtered() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let kind = ProtocolKind::RnfNoise { nf: 5 };
        let env = envelope(
            &ring,
            &signer,
            "SELECT district, COUNT(*) FROM power GROUP BY district",
            kind,
            "supplier",
        );
        let mut params = ProtocolParams::new(kind);
        params.noise_domain = vec![
            GroupKey::from_values(&[Value::Str("north".into())]),
            GroupKey::from_values(&[Value::Str("south".into())]),
        ];
        let ctx = tds.open_query(&env, params, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tuples = tds.collect(&ctx, &mut rng).unwrap();
        assert_eq!(tuples.len(), 6, "1 true + 5 fakes");
        // All payload sizes identical: fakes are size-indistinguishable.
        let sizes: std::collections::BTreeSet<usize> =
            tuples.iter().map(|t| t.blob.len()).collect();
        assert_eq!(sizes.len(), 1);

        let reduced = tds
            .reduce_inputs(&ctx, &tuples, RetagMode::DetPerGroup, &mut rng)
            .unwrap();
        // Only the true group survives reduction.
        let finalized = tds
            .finalize_groups(&ctx, &reduced, ResultDest::Querier, &mut rng)
            .unwrap();
        assert_eq!(finalized.len(), 1);
        let k1 = NDetCipher::new(&ring.k1);
        let row = ResultRow::decode(&k1.decrypt(&finalized[0]).unwrap()).unwrap();
        assert_eq!(row.0, vec![Value::Str("north".into()), Value::Int(1)]);
    }

    #[test]
    fn c_noise_covers_complementary_domain() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT district, COUNT(*) FROM power GROUP BY district",
            ProtocolKind::CNoise,
            "supplier",
        );
        let mut params = ProtocolParams::new(ProtocolKind::CNoise);
        params.noise_domain = ["north", "south", "east", "west"]
            .iter()
            .map(|d| GroupKey::from_values(&[Value::Str(d.to_string())]))
            .collect();
        let ctx = tds.open_query(&env, params, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let tuples = tds.collect(&ctx, &mut rng).unwrap();
        // 1 true + 3 complementary fakes = nd tuples, flat by construction.
        assert_eq!(tuples.len(), 4);
        let tags: std::collections::BTreeSet<_> = tuples.iter().map(|t| t.tag.clone()).collect();
        assert_eq!(tags.len(), 4, "every domain value appears exactly once");
    }

    #[test]
    fn ed_hist_requires_histogram() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let kind = ProtocolKind::EdHist { buckets: 4 };
        let env = envelope(
            &ring,
            &signer,
            "SELECT district, COUNT(*) FROM power GROUP BY district",
            kind,
            "supplier",
        );
        let ctx = tds.open_query(&env, ProtocolParams::new(kind), 0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            tds.collect(&ctx, &mut rng),
            Err(ProtocolError::Protocol(_))
        ));
    }

    #[test]
    fn filter_plain_drops_dummies() {
        let (tds, signer, ring) = make_tds(1, &[(1, 2.0, "north")]);
        let env = envelope(
            &ring,
            &signer,
            "SELECT cid FROM power WHERE cons > 1.0",
            ProtocolKind::Basic,
            "supplier",
        );
        let ctx = tds
            .open_query(&env, ProtocolParams::new(ProtocolKind::Basic), 0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut tuples = tds.collect(&ctx, &mut rng).unwrap();
        assert_eq!(tuples.len(), 1);
        // Add a dummy, as an empty-result TDS of the same ring would send.
        let dummy = PlainTuple::Dummy.encode(ctx.params.pad).unwrap();
        tuples.push(tds.seal_k2(GroupTag::None, dummy, &mut rng));

        let filtered = tds.filter_plain(&ctx, &tuples, &mut rng).unwrap();
        assert_eq!(filtered.len(), 1);
        let k1 = NDetCipher::new(&ring.k1);
        let row = ResultRow::decode(&k1.decrypt(&filtered[0]).unwrap()).unwrap();
        assert_eq!(row.0, vec![Value::Int(1)]);
    }

    #[test]
    fn histogram_seal_roundtrip() {
        let (tds, _, _) = make_tds(1, &[]);
        let dist: Vec<_> = (0..10)
            .map(|i| (GroupKey::from_values(&[Value::Int(i)]), 3u64))
            .collect();
        let hist = Histogram::build(&dist, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let sealed = tds.seal_histogram(&hist, &mut rng);
        assert_eq!(tds.open_histogram(&sealed).unwrap(), hist);
    }
}
