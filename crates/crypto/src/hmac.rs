//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Sha256, BLOCK_SIZE, DIGEST_SIZE};

/// Incremental HMAC-SHA256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_SIZE],
}

impl HmacSha256 {
    /// Create an HMAC context keyed by `key` (any length; hashed if > 64 B).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            k[..DIGEST_SIZE].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_SIZE];
        let mut opad = [0x5cu8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            outer_key: opad,
        }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_SIZE] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot convenience.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_SIZE] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }
}

/// Constant-time comparison of two byte strings.
///
/// The SSI never verifies MACs (it only stores ciphertexts), but TDSs do, and
/// timing side channels are exactly what tamper-resistant hardware defends
/// against — keep the software model honest.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6() {
        let key = [0xaa; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"key material";
        let data = b"some message spanning multiple updates";
        let mut h = HmacSha256::new(key);
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), HmacSha256::mac(key, data));
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
