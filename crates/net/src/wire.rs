//! Wire message codecs for the SSI and TDS-pool protocols.
//!
//! Hand-rolled big-endian codecs in the `tuple_codec` idiom: explicit
//! length prefixes, checked counter widths (a too-long vector is a typed
//! [`ProtocolError::LengthOverflow`], never a silently wrapped counter),
//! and bounds-checked reads (a truncated message is a typed
//! `Codec("unexpected end …")`). Ciphertext blobs cross the wire as the
//! exact byte strings the `tuple_codec` envelopes produced — the codec
//! frames them, it never looks inside.
//!
//! Error transport preserves the [`ProtocolError`] *variant class* — a
//! remote `Crypto`/`Codec` rejection is retryable at the driver exactly
//! like a local one — though the two `&'static str` payloads
//! (`NoProgress.phase`, `LengthOverflow.what`, `InvalidTransition.what`)
//! cannot carry arbitrary remote strings and decode to a fixed `"remote"`
//! marker instead.

use tdsql_core::bytes::Bytes;
use tdsql_core::error::{ProtocolError, Result};
use tdsql_core::histogram::Histogram;
use tdsql_core::message::{
    AssignmentId, DeliveryOutcome, GroupTag, QueryEnvelope, QueryTarget, StoredTuple,
};
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::service::TdsStep;
use tdsql_core::stats::Phase;
use tdsql_core::tds::{ResultDest, RetagMode};
use tdsql_crypto::credential::{Credential, Role};
use tdsql_crypto::CryptoError;
use tdsql_sql::ast::SizeClause;
use tdsql_sql::error::SqlError;
use tdsql_sql::value::{GroupKey, Value};

// ---------------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------------

fn eof() -> ProtocolError {
    ProtocolError::Codec("unexpected end of wire message".into())
}

fn bad(what: &str) -> ProtocolError {
    ProtocolError::Codec(format!("malformed wire message: {what}"))
}

/// Checked vector/byte-string counter: refuses to emit a length the wire
/// format cannot carry instead of wrapping it.
fn len_u32(what: &'static str, len: usize) -> Result<u32> {
    u32::try_from(len).map_err(|_| ProtocolError::LengthOverflow {
        what,
        len,
        max: u32::MAX as usize,
    })
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn take_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf.get(*pos).ok_or_else(eof)?;
    *pos += 1;
    Ok(b)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos.checked_add(4).ok_or_else(eof)?;
    let slice = buf.get(*pos..end).ok_or_else(eof)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(slice);
    *pos = end;
    Ok(u32::from_be_bytes(b))
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos.checked_add(8).ok_or_else(eof)?;
    let slice = buf.get(*pos..end).ok_or_else(eof)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(slice);
    *pos = end;
    Ok(u64::from_be_bytes(b))
}

fn put_blob(out: &mut Vec<u8>, what: &'static str, bytes: &[u8]) -> Result<()> {
    put_u32(out, len_u32(what, bytes.len())?);
    out.extend_from_slice(bytes);
    Ok(())
}

/// Bounds-checked byte string: the declared length must fit inside the
/// remaining message, so a hostile count cannot trigger a huge allocation.
fn take_blob(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = take_u32(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or_else(eof)?;
    let slice = buf.get(*pos..end).ok_or_else(eof)?;
    *pos = end;
    Ok(slice.to_vec())
}

fn put_str(out: &mut Vec<u8>, what: &'static str, s: &str) -> Result<()> {
    put_blob(out, what, s.as_bytes())
}

fn take_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    String::from_utf8(take_blob(buf, pos)?).map_err(|_| bad("non-UTF-8 string"))
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            put_u64(out, x);
        }
    }
}

fn take_opt_u64(buf: &[u8], pos: &mut usize) -> Result<Option<u64>> {
    match take_u8(buf, pos)? {
        0 => Ok(None),
        1 => Ok(Some(take_u64(buf, pos)?)),
        _ => Err(bad("option flag")),
    }
}

fn take_usize(buf: &[u8], pos: &mut usize) -> Result<usize> {
    usize::try_from(take_u64(buf, pos)?).map_err(|_| bad("usize out of range"))
}

// ---------------------------------------------------------------------------
// Domain types
// ---------------------------------------------------------------------------

fn put_values(out: &mut Vec<u8>, row: &[Value]) -> Result<()> {
    put_u32(out, len_u32("wire value row", row.len())?);
    for v in row {
        v.canonical_bytes(out);
    }
    Ok(())
}

fn take_values(buf: &[u8], pos: &mut usize) -> Result<Vec<Value>> {
    let n = take_u32(buf, pos)? as usize;
    let mut row = Vec::new();
    for _ in 0..n {
        row.push(Value::decode_canonical(buf, pos)?);
    }
    Ok(row)
}

pub(crate) fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) -> Result<()> {
    put_u32(out, len_u32("wire rows", rows.len())?);
    for row in rows {
        put_values(out, row)?;
    }
    Ok(())
}

pub(crate) fn take_rows(buf: &[u8], pos: &mut usize) -> Result<Vec<Vec<Value>>> {
    let n = take_u32(buf, pos)? as usize;
    let mut rows = Vec::new();
    for _ in 0..n {
        rows.push(take_values(buf, pos)?);
    }
    Ok(rows)
}

fn put_tag(out: &mut Vec<u8>, tag: &GroupTag) -> Result<()> {
    match tag {
        GroupTag::None => put_u8(out, 0),
        GroupTag::Det(b) => {
            put_u8(out, 1);
            put_blob(out, "wire group tag", b)?;
        }
        GroupTag::Bucket(b) => {
            put_u8(out, 2);
            out.extend_from_slice(b);
        }
    }
    Ok(())
}

fn take_tag(buf: &[u8], pos: &mut usize) -> Result<GroupTag> {
    Ok(match take_u8(buf, pos)? {
        0 => GroupTag::None,
        1 => GroupTag::Det(Bytes::from(take_blob(buf, pos)?)),
        2 => {
            let end = pos.checked_add(8).ok_or_else(eof)?;
            let slice = buf.get(*pos..end).ok_or_else(eof)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(slice);
            *pos = end;
            GroupTag::Bucket(b)
        }
        _ => return Err(bad("group tag kind")),
    })
}

fn put_tuple(out: &mut Vec<u8>, t: &StoredTuple) -> Result<()> {
    put_tag(out, &t.tag)?;
    put_blob(out, "wire tuple blob", &t.blob)
}

fn take_tuple(buf: &[u8], pos: &mut usize) -> Result<StoredTuple> {
    let tag = take_tag(buf, pos)?;
    let blob = Bytes::from(take_blob(buf, pos)?);
    Ok(StoredTuple { tag, blob })
}

pub(crate) fn put_tuples(out: &mut Vec<u8>, ts: &[StoredTuple]) -> Result<()> {
    put_u32(out, len_u32("wire tuples", ts.len())?);
    for t in ts {
        put_tuple(out, t)?;
    }
    Ok(())
}

pub(crate) fn take_tuples(buf: &[u8], pos: &mut usize) -> Result<Vec<StoredTuple>> {
    let n = take_u32(buf, pos)? as usize;
    let mut ts = Vec::new();
    for _ in 0..n {
        ts.push(take_tuple(buf, pos)?);
    }
    Ok(ts)
}

pub(crate) fn put_blobs(out: &mut Vec<u8>, bs: &[Bytes]) -> Result<()> {
    put_u32(out, len_u32("wire blobs", bs.len())?);
    for b in bs {
        put_blob(out, "wire blob", b)?;
    }
    Ok(())
}

pub(crate) fn take_blobs(buf: &[u8], pos: &mut usize) -> Result<Vec<Bytes>> {
    let n = take_u32(buf, pos)? as usize;
    let mut bs = Vec::new();
    for _ in 0..n {
        bs.push(Bytes::from(take_blob(buf, pos)?));
    }
    Ok(bs)
}

fn put_credential(out: &mut Vec<u8>, c: &Credential) -> Result<()> {
    put_str(out, "wire credential id", &c.querier_id)?;
    put_str(out, "wire credential role", &c.role.0)?;
    put_u64(out, c.expires_at_round);
    out.extend_from_slice(&c.signature());
    Ok(())
}

fn take_credential(buf: &[u8], pos: &mut usize) -> Result<Credential> {
    let querier_id = take_str(buf, pos)?;
    let role = Role(take_str(buf, pos)?);
    let expires_at_round = take_u64(buf, pos)?;
    let end = pos.checked_add(32).ok_or_else(eof)?;
    let slice = buf.get(*pos..end).ok_or_else(eof)?;
    let mut signature = [0u8; 32];
    signature.copy_from_slice(slice);
    *pos = end;
    Ok(Credential::from_parts(
        querier_id,
        role,
        expires_at_round,
        signature,
    ))
}

fn put_kind(out: &mut Vec<u8>, k: ProtocolKind) {
    match k {
        ProtocolKind::Basic => put_u8(out, 0),
        ProtocolKind::SAgg => put_u8(out, 1),
        ProtocolKind::RnfNoise { nf } => {
            put_u8(out, 2);
            put_u32(out, nf);
        }
        ProtocolKind::CNoise => put_u8(out, 3),
        ProtocolKind::EdHist { buckets } => {
            put_u8(out, 4);
            put_u32(out, buckets);
        }
    }
}

fn take_kind(buf: &[u8], pos: &mut usize) -> Result<ProtocolKind> {
    Ok(match take_u8(buf, pos)? {
        0 => ProtocolKind::Basic,
        1 => ProtocolKind::SAgg,
        2 => ProtocolKind::RnfNoise {
            nf: take_u32(buf, pos)?,
        },
        3 => ProtocolKind::CNoise,
        4 => ProtocolKind::EdHist {
            buckets: take_u32(buf, pos)?,
        },
        _ => return Err(bad("protocol kind")),
    })
}

pub(crate) fn put_envelope(out: &mut Vec<u8>, e: &QueryEnvelope) -> Result<()> {
    put_u64(out, e.query_id);
    put_blob(out, "wire enc_query", &e.enc_query)?;
    put_credential(out, &e.credential)?;
    put_opt_u64(out, e.size.max_tuples);
    put_opt_u64(out, e.size.max_rounds);
    put_kind(out, e.protocol);
    match &e.target {
        QueryTarget::Crowd => put_u8(out, 0),
        QueryTarget::Tds(ids) => {
            put_u8(out, 1);
            put_u32(out, len_u32("wire target ids", ids.len())?);
            for id in ids {
                put_u64(out, *id);
            }
        }
    }
    Ok(())
}

pub(crate) fn take_envelope(buf: &[u8], pos: &mut usize) -> Result<QueryEnvelope> {
    let query_id = take_u64(buf, pos)?;
    let enc_query = Bytes::from(take_blob(buf, pos)?);
    let credential = take_credential(buf, pos)?;
    let size = SizeClause {
        max_tuples: take_opt_u64(buf, pos)?,
        max_rounds: take_opt_u64(buf, pos)?,
    };
    let protocol = take_kind(buf, pos)?;
    let target = match take_u8(buf, pos)? {
        0 => QueryTarget::Crowd,
        1 => {
            let n = take_u32(buf, pos)? as usize;
            let mut ids = Vec::new();
            for _ in 0..n {
                ids.push(take_u64(buf, pos)?);
            }
            QueryTarget::Tds(ids)
        }
        _ => return Err(bad("query target kind")),
    };
    Ok(QueryEnvelope {
        query_id,
        enc_query,
        credential,
        size,
        protocol,
        target,
    })
}

pub(crate) fn put_params(out: &mut Vec<u8>, p: &ProtocolParams) -> Result<()> {
    put_kind(out, p.kind);
    put_u64(out, p.pad as u64);
    put_u64(out, p.chunk as u64);
    put_u64(out, p.alpha as u64);
    put_u32(out, len_u32("wire noise domain", p.noise_domain.len())?);
    for k in &p.noise_domain {
        put_blob(out, "wire group key", &k.0)?;
    }
    match &p.histogram {
        None => put_u8(out, 0),
        Some(h) => {
            put_u8(out, 1);
            put_blob(out, "wire histogram", &h.encode())?;
        }
    }
    Ok(())
}

pub(crate) fn take_params(buf: &[u8], pos: &mut usize) -> Result<ProtocolParams> {
    let kind = take_kind(buf, pos)?;
    let pad = take_usize(buf, pos)?;
    let chunk = take_usize(buf, pos)?;
    let alpha = take_usize(buf, pos)?;
    let n = take_u32(buf, pos)? as usize;
    let mut noise_domain = Vec::new();
    for _ in 0..n {
        noise_domain.push(GroupKey(take_blob(buf, pos)?));
    }
    let histogram = match take_u8(buf, pos)? {
        0 => None,
        1 => {
            let enc = take_blob(buf, pos)?;
            Some(Histogram::decode(&enc).ok_or_else(|| bad("histogram"))?)
        }
        _ => return Err(bad("histogram flag")),
    };
    Ok(ProtocolParams {
        kind,
        pad,
        chunk,
        alpha,
        noise_domain,
        histogram,
    })
}

fn put_phase(out: &mut Vec<u8>, p: Phase) {
    put_u8(
        out,
        match p {
            Phase::Discovery => 0,
            Phase::Collection => 1,
            Phase::Aggregation => 2,
            Phase::Filtering => 3,
        },
    );
}

fn take_phase(buf: &[u8], pos: &mut usize) -> Result<Phase> {
    Ok(match take_u8(buf, pos)? {
        0 => Phase::Discovery,
        1 => Phase::Collection,
        2 => Phase::Aggregation,
        3 => Phase::Filtering,
        _ => return Err(bad("phase")),
    })
}

fn put_retag(out: &mut Vec<u8>, r: RetagMode) {
    put_u8(
        out,
        match r {
            RetagMode::None => 0,
            RetagMode::DetPerGroup => 1,
        },
    );
}

fn take_retag(buf: &[u8], pos: &mut usize) -> Result<RetagMode> {
    Ok(match take_u8(buf, pos)? {
        0 => RetagMode::None,
        1 => RetagMode::DetPerGroup,
        _ => return Err(bad("retag mode")),
    })
}

fn put_dest(out: &mut Vec<u8>, d: ResultDest) {
    put_u8(
        out,
        match d {
            ResultDest::Querier => 0,
            ResultDest::Tds => 1,
        },
    );
}

fn take_dest(buf: &[u8], pos: &mut usize) -> Result<ResultDest> {
    Ok(match take_u8(buf, pos)? {
        0 => ResultDest::Querier,
        1 => ResultDest::Tds,
        _ => return Err(bad("result dest")),
    })
}

pub(crate) fn put_step(out: &mut Vec<u8>, s: TdsStep) {
    match s {
        TdsStep::Collect => put_u8(out, 0),
        TdsStep::ReduceInputs { retag } => {
            put_u8(out, 1);
            put_retag(out, retag);
        }
        TdsStep::ReducePartials { retag } => {
            put_u8(out, 2);
            put_retag(out, retag);
        }
        TdsStep::FilterPlain => put_u8(out, 3),
        TdsStep::FinalizeGroups { dest } => {
            put_u8(out, 4);
            put_dest(out, dest);
        }
    }
}

pub(crate) fn take_step(buf: &[u8], pos: &mut usize) -> Result<TdsStep> {
    Ok(match take_u8(buf, pos)? {
        0 => TdsStep::Collect,
        1 => TdsStep::ReduceInputs {
            retag: take_retag(buf, pos)?,
        },
        2 => TdsStep::ReducePartials {
            retag: take_retag(buf, pos)?,
        },
        3 => TdsStep::FilterPlain,
        4 => TdsStep::FinalizeGroups {
            dest: take_dest(buf, pos)?,
        },
        _ => return Err(bad("tds step")),
    })
}

fn put_outcome(out: &mut Vec<u8>, o: DeliveryOutcome) {
    put_u8(
        out,
        match o {
            DeliveryOutcome::Accepted => 0,
            DeliveryOutcome::Duplicate => 1,
            DeliveryOutcome::LateAfterReassign => 2,
            DeliveryOutcome::WindowClosed => 3,
        },
    );
}

fn take_outcome(buf: &[u8], pos: &mut usize) -> Result<DeliveryOutcome> {
    Ok(match take_u8(buf, pos)? {
        0 => DeliveryOutcome::Accepted,
        1 => DeliveryOutcome::Duplicate,
        2 => DeliveryOutcome::LateAfterReassign,
        3 => DeliveryOutcome::WindowClosed,
        _ => return Err(bad("delivery outcome")),
    })
}

// ---------------------------------------------------------------------------
// Error transport
// ---------------------------------------------------------------------------

/// Encode a [`ProtocolError`] for the response wire.
pub(crate) fn put_error(out: &mut Vec<u8>, e: &ProtocolError) -> Result<()> {
    match e {
        ProtocolError::Crypto(c) => {
            put_u8(out, 0);
            match c {
                CryptoError::Truncated { need, got } => {
                    put_u8(out, 0);
                    put_u64(out, *need as u64);
                    put_u64(out, *got as u64);
                }
                CryptoError::TagMismatch => put_u8(out, 1),
                CryptoError::BadCredential => put_u8(out, 2),
            }
        }
        ProtocolError::Sql(s) => {
            put_u8(out, 1);
            put_str(out, "wire error detail", &s.to_string())?;
        }
        ProtocolError::Codec(s) => {
            put_u8(out, 2);
            put_str(out, "wire error detail", s)?;
        }
        ProtocolError::Protocol(s) => {
            put_u8(out, 3);
            put_str(out, "wire error detail", s)?;
        }
        ProtocolError::NoProgress { phase } => {
            put_u8(out, 4);
            put_str(out, "wire error detail", phase)?;
        }
        ProtocolError::AccessDenied => put_u8(out, 5),
        ProtocolError::Unsupported(s) => {
            put_u8(out, 6);
            put_str(out, "wire error detail", s)?;
        }
        ProtocolError::PadTooSmall { needed, pad } => {
            put_u8(out, 7);
            put_u64(out, *needed as u64);
            put_u64(out, *pad as u64);
        }
        ProtocolError::LengthOverflow { what, len, max } => {
            put_u8(out, 8);
            put_str(out, "wire error detail", what)?;
            put_u64(out, *len as u64);
            put_u64(out, *max as u64);
        }
        ProtocolError::QueryAborted { phase, retries } => {
            put_u8(out, 9);
            put_phase(out, *phase);
            put_u32(out, *retries);
        }
        ProtocolError::UnknownQuery { query_id } => {
            put_u8(out, 10);
            put_u64(out, *query_id);
        }
        ProtocolError::InvalidTransition { query_id, what } => {
            put_u8(out, 11);
            put_u64(out, *query_id);
            put_str(out, "wire error detail", what)?;
        }
    }
    Ok(())
}

/// Decode a transported [`ProtocolError`]. `&'static str` payloads decode
/// to the fixed `"remote"` marker (the class, which drives retry
/// semantics, is preserved exactly).
pub(crate) fn take_error(buf: &[u8], pos: &mut usize) -> Result<ProtocolError> {
    Ok(match take_u8(buf, pos)? {
        0 => ProtocolError::Crypto(match take_u8(buf, pos)? {
            0 => CryptoError::Truncated {
                need: take_usize(buf, pos)?,
                got: take_usize(buf, pos)?,
            },
            1 => CryptoError::TagMismatch,
            2 => CryptoError::BadCredential,
            _ => return Err(bad("crypto error kind")),
        }),
        1 => ProtocolError::Sql(SqlError::Parse {
            message: take_str(buf, pos)?,
        }),
        2 => ProtocolError::Codec(take_str(buf, pos)?),
        3 => ProtocolError::Protocol(take_str(buf, pos)?),
        4 => {
            let _detail = take_str(buf, pos)?;
            ProtocolError::NoProgress { phase: "remote" }
        }
        5 => ProtocolError::AccessDenied,
        6 => ProtocolError::Unsupported(take_str(buf, pos)?),
        7 => ProtocolError::PadTooSmall {
            needed: take_usize(buf, pos)?,
            pad: take_usize(buf, pos)?,
        },
        8 => {
            let _what = take_str(buf, pos)?;
            ProtocolError::LengthOverflow {
                what: "remote",
                len: take_usize(buf, pos)?,
                max: take_usize(buf, pos)?,
            }
        }
        9 => ProtocolError::QueryAborted {
            phase: take_phase(buf, pos)?,
            retries: take_u32(buf, pos)?,
        },
        10 => ProtocolError::UnknownQuery {
            query_id: take_u64(buf, pos)?,
        },
        11 => {
            let query_id = take_u64(buf, pos)?;
            let _what = take_str(buf, pos)?;
            ProtocolError::InvalidTransition {
                query_id,
                what: "remote",
            }
        }
        _ => return Err(bad("error kind")),
    })
}

// ---------------------------------------------------------------------------
// SSI protocol messages
// ---------------------------------------------------------------------------

/// One request on the SSI wire.
#[derive(Debug, Clone)]
pub enum SsiRequest {
    /// Post an envelope; the SSI assigns the query id.
    PostQuery(QueryEnvelope),
    /// Download the posted envelope.
    Envelope(u64),
    /// Allocate a work item.
    NewItem(u64),
    /// Begin a delivery attempt.
    BeginAssignment(u64, u64),
    /// Has the item completed?
    ItemDone(u64, u64),
    /// Deliver a collection contribution.
    ReceiveCollection {
        /// Query id.
        query_id: u64,
        /// Delivery assignment.
        assignment: AssignmentId,
        /// The contribution.
        tuples: Vec<StoredTuple>,
    },
    /// Number of collected tuples.
    CollectionCount(u64),
    /// Has the SIZE tuple bound been reached?
    SizeTuplesReached(u64),
    /// Close the collection window.
    CloseCollection(u64),
    /// Drain the working set.
    TakeWorking(u64),
    /// Restore tuples into the working set (driver bookkeeping).
    RestoreWorking {
        /// Query id.
        query_id: u64,
        /// Phase attribution for the SSI's observation log.
        phase: Phase,
        /// The tuples to restore.
        tuples: Vec<StoredTuple>,
    },
    /// Deliver intermediate tuples.
    ReceiveWorking {
        /// Query id.
        query_id: u64,
        /// Delivery assignment.
        assignment: AssignmentId,
        /// Phase attribution.
        phase: Phase,
        /// The tuples.
        tuples: Vec<StoredTuple>,
    },
    /// Deliver final sealed rows.
    ReceiveResults {
        /// Query id.
        query_id: u64,
        /// Delivery assignment.
        assignment: AssignmentId,
        /// The sealed rows.
        rows: Vec<Bytes>,
    },
    /// Download the final result blobs.
    Results(u64),
    /// Drop all state of a query.
    PurgeQuery(u64),
}

impl SsiRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            SsiRequest::PostQuery(env) => {
                put_u8(&mut out, 0);
                put_envelope(&mut out, env)?;
            }
            SsiRequest::Envelope(qid) => {
                put_u8(&mut out, 1);
                put_u64(&mut out, *qid);
            }
            SsiRequest::NewItem(qid) => {
                put_u8(&mut out, 2);
                put_u64(&mut out, *qid);
            }
            SsiRequest::BeginAssignment(qid, item) => {
                put_u8(&mut out, 3);
                put_u64(&mut out, *qid);
                put_u64(&mut out, *item);
            }
            SsiRequest::ItemDone(qid, item) => {
                put_u8(&mut out, 4);
                put_u64(&mut out, *qid);
                put_u64(&mut out, *item);
            }
            SsiRequest::ReceiveCollection {
                query_id,
                assignment,
                tuples,
            } => {
                put_u8(&mut out, 5);
                put_u64(&mut out, *query_id);
                put_u64(&mut out, assignment.0);
                put_tuples(&mut out, tuples)?;
            }
            SsiRequest::CollectionCount(qid) => {
                put_u8(&mut out, 6);
                put_u64(&mut out, *qid);
            }
            SsiRequest::SizeTuplesReached(qid) => {
                put_u8(&mut out, 7);
                put_u64(&mut out, *qid);
            }
            SsiRequest::CloseCollection(qid) => {
                put_u8(&mut out, 8);
                put_u64(&mut out, *qid);
            }
            SsiRequest::TakeWorking(qid) => {
                put_u8(&mut out, 9);
                put_u64(&mut out, *qid);
            }
            SsiRequest::RestoreWorking {
                query_id,
                phase,
                tuples,
            } => {
                put_u8(&mut out, 10);
                put_u64(&mut out, *query_id);
                put_phase(&mut out, *phase);
                put_tuples(&mut out, tuples)?;
            }
            SsiRequest::ReceiveWorking {
                query_id,
                assignment,
                phase,
                tuples,
            } => {
                put_u8(&mut out, 11);
                put_u64(&mut out, *query_id);
                put_u64(&mut out, assignment.0);
                put_phase(&mut out, *phase);
                put_tuples(&mut out, tuples)?;
            }
            SsiRequest::ReceiveResults {
                query_id,
                assignment,
                rows,
            } => {
                put_u8(&mut out, 12);
                put_u64(&mut out, *query_id);
                put_u64(&mut out, assignment.0);
                put_blobs(&mut out, rows)?;
            }
            SsiRequest::Results(qid) => {
                put_u8(&mut out, 13);
                put_u64(&mut out, *qid);
            }
            SsiRequest::PurgeQuery(qid) => {
                put_u8(&mut out, 14);
                put_u64(&mut out, *qid);
            }
        }
        Ok(out)
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let pos = &mut 0;
        let req = match take_u8(buf, pos)? {
            0 => SsiRequest::PostQuery(take_envelope(buf, pos)?),
            1 => SsiRequest::Envelope(take_u64(buf, pos)?),
            2 => SsiRequest::NewItem(take_u64(buf, pos)?),
            3 => SsiRequest::BeginAssignment(take_u64(buf, pos)?, take_u64(buf, pos)?),
            4 => SsiRequest::ItemDone(take_u64(buf, pos)?, take_u64(buf, pos)?),
            5 => SsiRequest::ReceiveCollection {
                query_id: take_u64(buf, pos)?,
                assignment: AssignmentId(take_u64(buf, pos)?),
                tuples: take_tuples(buf, pos)?,
            },
            6 => SsiRequest::CollectionCount(take_u64(buf, pos)?),
            7 => SsiRequest::SizeTuplesReached(take_u64(buf, pos)?),
            8 => SsiRequest::CloseCollection(take_u64(buf, pos)?),
            9 => SsiRequest::TakeWorking(take_u64(buf, pos)?),
            10 => SsiRequest::RestoreWorking {
                query_id: take_u64(buf, pos)?,
                phase: take_phase(buf, pos)?,
                tuples: take_tuples(buf, pos)?,
            },
            11 => SsiRequest::ReceiveWorking {
                query_id: take_u64(buf, pos)?,
                assignment: AssignmentId(take_u64(buf, pos)?),
                phase: take_phase(buf, pos)?,
                tuples: take_tuples(buf, pos)?,
            },
            12 => SsiRequest::ReceiveResults {
                query_id: take_u64(buf, pos)?,
                assignment: AssignmentId(take_u64(buf, pos)?),
                rows: take_blobs(buf, pos)?,
            },
            13 => SsiRequest::Results(take_u64(buf, pos)?),
            14 => SsiRequest::PurgeQuery(take_u64(buf, pos)?),
            _ => return Err(bad("ssi request kind")),
        };
        expect_consumed(buf, *pos)?;
        Ok(req)
    }

    /// Short request name for obs counters (no payload data).
    pub fn name(&self) -> &'static str {
        match self {
            SsiRequest::PostQuery(_) => "post_query",
            SsiRequest::Envelope(_) => "envelope",
            SsiRequest::NewItem(_) => "new_item",
            SsiRequest::BeginAssignment(..) => "begin_assignment",
            SsiRequest::ItemDone(..) => "item_done",
            SsiRequest::ReceiveCollection { .. } => "receive_collection",
            SsiRequest::CollectionCount(_) => "collection_count",
            SsiRequest::SizeTuplesReached(_) => "size_tuples_reached",
            SsiRequest::CloseCollection(_) => "close_collection",
            SsiRequest::TakeWorking(_) => "take_working",
            SsiRequest::RestoreWorking { .. } => "restore_working",
            SsiRequest::ReceiveWorking { .. } => "receive_working",
            SsiRequest::ReceiveResults { .. } => "receive_results",
            SsiRequest::Results(_) => "results",
            SsiRequest::PurgeQuery(_) => "purge_query",
        }
    }
}

/// One response on the SSI wire.
#[derive(Debug, Clone)]
pub enum SsiResponse {
    /// An id (query id, work item or assignment).
    Id(u64),
    /// A downloaded envelope.
    Envelope(QueryEnvelope),
    /// A boolean state answer.
    Flag(bool),
    /// A delivery outcome.
    Outcome(DeliveryOutcome),
    /// A count.
    Count(u64),
    /// Success with no payload.
    Unit,
    /// Working tuples.
    Tuples(Vec<StoredTuple>),
    /// Result blobs.
    Blobs(Vec<Bytes>),
    /// The operation failed with a protocol error.
    Err(ProtocolError),
}

impl SsiResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            SsiResponse::Id(v) => {
                put_u8(&mut out, 0);
                put_u64(&mut out, *v);
            }
            SsiResponse::Envelope(e) => {
                put_u8(&mut out, 1);
                put_envelope(&mut out, e)?;
            }
            SsiResponse::Flag(b) => {
                put_u8(&mut out, 2);
                put_u8(&mut out, u8::from(*b));
            }
            SsiResponse::Outcome(o) => {
                put_u8(&mut out, 3);
                put_outcome(&mut out, *o);
            }
            SsiResponse::Count(v) => {
                put_u8(&mut out, 4);
                put_u64(&mut out, *v);
            }
            SsiResponse::Unit => put_u8(&mut out, 5),
            SsiResponse::Tuples(ts) => {
                put_u8(&mut out, 6);
                put_tuples(&mut out, ts)?;
            }
            SsiResponse::Blobs(bs) => {
                put_u8(&mut out, 7);
                put_blobs(&mut out, bs)?;
            }
            SsiResponse::Err(e) => {
                put_u8(&mut out, 8);
                put_error(&mut out, e)?;
            }
        }
        Ok(out)
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let pos = &mut 0;
        let resp = match take_u8(buf, pos)? {
            0 => SsiResponse::Id(take_u64(buf, pos)?),
            1 => SsiResponse::Envelope(take_envelope(buf, pos)?),
            2 => SsiResponse::Flag(match take_u8(buf, pos)? {
                0 => false,
                1 => true,
                _ => return Err(bad("bool")),
            }),
            3 => SsiResponse::Outcome(take_outcome(buf, pos)?),
            4 => SsiResponse::Count(take_u64(buf, pos)?),
            5 => SsiResponse::Unit,
            6 => SsiResponse::Tuples(take_tuples(buf, pos)?),
            7 => SsiResponse::Blobs(take_blobs(buf, pos)?),
            8 => SsiResponse::Err(take_error(buf, pos)?),
            _ => return Err(bad("ssi response kind")),
        };
        expect_consumed(buf, *pos)?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// TDS-pool protocol messages
// ---------------------------------------------------------------------------

/// One request on the TDS-pool wire.
#[derive(Debug, Clone)]
pub enum PoolRequest {
    /// Burn-time ids of the population.
    TdsIds,
    /// Execute one protocol step on one TDS.
    Step {
        /// Pool index of the TDS.
        index: u32,
        /// The posted envelope (ciphertext; the pool decrypts inside the
        /// trust domain).
        env: QueryEnvelope,
        /// Protocol parameters (public recipe + discovery artifacts,
        /// conceptually `k2`-distributed).
        params: ProtocolParams,
        /// Driver round clock (credential expiry checks).
        now_round: u64,
        /// The step to execute.
        step: TdsStep,
        /// Input partition (empty for collection).
        partition: Vec<StoredTuple>,
        /// Seed for the step's TDS-side randomness.
        rng_seed: u64,
    },
    /// Open `k2`-sealed rows inside the trust domain (discovery).
    OpenRows(Vec<Bytes>),
}

impl PoolRequest {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            PoolRequest::TdsIds => put_u8(&mut out, 0),
            PoolRequest::Step {
                index,
                env,
                params,
                now_round,
                step,
                partition,
                rng_seed,
            } => {
                put_u8(&mut out, 1);
                put_u32(&mut out, *index);
                put_envelope(&mut out, env)?;
                put_params(&mut out, params)?;
                put_u64(&mut out, *now_round);
                put_step(&mut out, *step);
                put_tuples(&mut out, partition)?;
                put_u64(&mut out, *rng_seed);
            }
            PoolRequest::OpenRows(blobs) => {
                put_u8(&mut out, 2);
                put_blobs(&mut out, blobs)?;
            }
        }
        Ok(out)
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let pos = &mut 0;
        let req = match take_u8(buf, pos)? {
            0 => PoolRequest::TdsIds,
            1 => PoolRequest::Step {
                index: take_u32(buf, pos)?,
                env: take_envelope(buf, pos)?,
                params: take_params(buf, pos)?,
                now_round: take_u64(buf, pos)?,
                step: take_step(buf, pos)?,
                partition: take_tuples(buf, pos)?,
                rng_seed: take_u64(buf, pos)?,
            },
            2 => PoolRequest::OpenRows(take_blobs(buf, pos)?),
            _ => return Err(bad("pool request kind")),
        };
        expect_consumed(buf, *pos)?;
        Ok(req)
    }

    /// Short request name for obs counters.
    pub fn name(&self) -> &'static str {
        match self {
            PoolRequest::TdsIds => "tds_ids",
            PoolRequest::Step { .. } => "step",
            PoolRequest::OpenRows(_) => "open_rows",
        }
    }
}

/// One response on the TDS-pool wire.
#[derive(Debug, Clone)]
pub enum PoolResponse {
    /// Population ids.
    Ids(Vec<u64>),
    /// Step output: intermediate tuples.
    Working(Vec<StoredTuple>),
    /// Step output: sealed result rows.
    Results(Vec<Bytes>),
    /// Opened cleartext rows (discovery; stays inside the trust domain —
    /// the pool only answers this for `k2`-sealed blobs it can decrypt).
    Rows(Vec<Vec<Value>>),
    /// The operation failed with a protocol error.
    Err(ProtocolError),
}

impl PoolResponse {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            PoolResponse::Ids(ids) => {
                put_u8(&mut out, 0);
                put_u32(&mut out, len_u32("wire pool ids", ids.len())?);
                for id in ids {
                    put_u64(&mut out, *id);
                }
            }
            PoolResponse::Working(ts) => {
                put_u8(&mut out, 1);
                put_tuples(&mut out, ts)?;
            }
            PoolResponse::Results(bs) => {
                put_u8(&mut out, 2);
                put_blobs(&mut out, bs)?;
            }
            PoolResponse::Rows(rows) => {
                put_u8(&mut out, 3);
                put_rows(&mut out, rows)?;
            }
            PoolResponse::Err(e) => {
                put_u8(&mut out, 4);
                put_error(&mut out, e)?;
            }
        }
        Ok(out)
    }

    /// Decode from a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let pos = &mut 0;
        let resp = match take_u8(buf, pos)? {
            0 => {
                let n = take_u32(buf, pos)? as usize;
                let mut ids = Vec::new();
                for _ in 0..n {
                    ids.push(take_u64(buf, pos)?);
                }
                PoolResponse::Ids(ids)
            }
            1 => PoolResponse::Working(take_tuples(buf, pos)?),
            2 => PoolResponse::Results(take_blobs(buf, pos)?),
            3 => PoolResponse::Rows(take_rows(buf, pos)?),
            4 => PoolResponse::Err(take_error(buf, pos)?),
            _ => return Err(bad("pool response kind")),
        };
        expect_consumed(buf, *pos)?;
        Ok(resp)
    }
}

/// Reject trailing bytes after a complete message: a length-prefix
/// confusion upstream must fail loudly, not silently truncate.
fn expect_consumed(buf: &[u8], pos: usize) -> Result<()> {
    if pos != buf.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdsql_crypto::credential::CredentialSigner;

    fn sample_envelope() -> QueryEnvelope {
        let signer = CredentialSigner::new(b"authority");
        QueryEnvelope {
            query_id: 7,
            enc_query: Bytes::from(vec![1, 2, 3, 4, 5]),
            credential: signer.issue("energy-co", Role::new("supplier"), 1000),
            size: SizeClause {
                max_tuples: Some(100),
                max_rounds: None,
            },
            protocol: ProtocolKind::EdHist { buckets: 4 },
            target: QueryTarget::Tds(vec![3, 5, 8]),
        }
    }

    #[test]
    fn envelope_round_trips_and_credential_still_verifies() {
        let env = sample_envelope();
        let mut out = Vec::new();
        put_envelope(&mut out, &env).unwrap();
        let got = take_envelope(&out, &mut 0).unwrap();
        assert_eq!(got.query_id, 7);
        assert_eq!(got.enc_query, env.enc_query);
        assert_eq!(got.size.max_tuples, Some(100));
        assert_eq!(got.protocol, ProtocolKind::EdHist { buckets: 4 });
        assert_eq!(got.target, QueryTarget::Tds(vec![3, 5, 8]));
        // The signature survived byte-for-byte.
        let signer = CredentialSigner::new(b"authority");
        assert!(got
            .credential
            .verify(&signer.verification_key(), 50)
            .is_ok());
        assert_eq!(got.credential, env.credential);
    }

    #[test]
    fn tampered_credential_fails_verification_after_transport() {
        let env = sample_envelope();
        let mut forged = env.credential.clone();
        forged = Credential::from_parts(
            forged.querier_id.clone(),
            Role::new("admin"),
            forged.expires_at_round,
            forged.signature(),
        );
        let signer = CredentialSigner::new(b"authority");
        assert!(forged.verify(&signer.verification_key(), 0).is_err());
    }

    #[test]
    fn params_round_trip_with_domain_and_histogram() {
        let mut p = ProtocolParams::new(ProtocolKind::CNoise);
        p.pad = 96;
        p.chunk = 17;
        p.alpha = 3;
        p.noise_domain = vec![GroupKey(vec![1, 2]), GroupKey(vec![9])];
        p.histogram = Some(Histogram::build(
            &[(GroupKey(vec![1]), 4), (GroupKey(vec![2]), 6)],
            2,
        ));
        let mut out = Vec::new();
        put_params(&mut out, &p).unwrap();
        let got = take_params(&out, &mut 0).unwrap();
        assert_eq!(got.kind, ProtocolKind::CNoise);
        assert_eq!(got.pad, 96);
        assert_eq!(got.chunk, 17);
        assert_eq!(got.alpha, 3);
        assert_eq!(got.noise_domain, p.noise_domain);
        let h = got.histogram.unwrap();
        assert_eq!(h.n_buckets(), 2);
        assert_eq!(
            h.bucket_of(&GroupKey(vec![1])),
            p.histogram.as_ref().unwrap().bucket_of(&GroupKey(vec![1]))
        );
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            SsiRequest::PostQuery(sample_envelope()),
            SsiRequest::BeginAssignment(3, 9),
            SsiRequest::ReceiveWorking {
                query_id: 1,
                assignment: AssignmentId(42),
                phase: Phase::Aggregation,
                tuples: vec![StoredTuple {
                    tag: GroupTag::Bucket([7; 8]),
                    blob: Bytes::from(vec![1, 2, 3]),
                }],
            },
            SsiRequest::Results(11),
        ];
        for req in reqs {
            let wire = req.encode().unwrap();
            let got = SsiRequest::decode(&wire).unwrap();
            assert_eq!(got.encode().unwrap(), wire, "{}", req.name());
        }
    }

    #[test]
    fn responses_round_trip_including_errors() {
        let resps = vec![
            SsiResponse::Id(5),
            SsiResponse::Outcome(DeliveryOutcome::LateAfterReassign),
            SsiResponse::Tuples(vec![StoredTuple {
                tag: GroupTag::Det(Bytes::from(vec![4, 4])),
                blob: Bytes::from(vec![9; 16]),
            }]),
            SsiResponse::Err(ProtocolError::QueryAborted {
                phase: Phase::Collection,
                retries: 24,
            }),
            SsiResponse::Err(ProtocolError::Crypto(CryptoError::TagMismatch)),
            SsiResponse::Err(ProtocolError::UnknownQuery { query_id: 3 }),
        ];
        for resp in resps {
            let wire = resp.encode().unwrap();
            let got = SsiResponse::decode(&wire).unwrap();
            assert_eq!(got.encode().unwrap(), wire);
        }
    }

    #[test]
    fn error_classes_survive_transport() {
        // Crypto / Codec classes drive the driver's retry decisions; the
        // wire must preserve them exactly.
        for (err, check) in [
            (ProtocolError::Crypto(CryptoError::TagMismatch), true),
            (ProtocolError::Codec("garbled".into()), true),
            (ProtocolError::AccessDenied, false),
        ] {
            let mut out = Vec::new();
            put_error(&mut out, &err).unwrap();
            let got = take_error(&out, &mut 0).unwrap();
            let retryable = matches!(got, ProtocolError::Crypto(_) | ProtocolError::Codec(_));
            assert_eq!(retryable, check, "{err:?} -> {got:?}");
        }
    }

    #[test]
    fn pool_step_round_trips() {
        let req = PoolRequest::Step {
            index: 4,
            env: sample_envelope(),
            params: ProtocolParams::new(ProtocolKind::SAgg),
            now_round: 12,
            step: TdsStep::FinalizeGroups {
                dest: ResultDest::Tds,
            },
            partition: vec![StoredTuple {
                tag: GroupTag::None,
                blob: Bytes::from(vec![8; 96]),
            }],
            rng_seed: 0xdead_beef,
        };
        let wire = req.encode().unwrap();
        let got = PoolRequest::decode(&wire).unwrap();
        assert_eq!(got.encode().unwrap(), wire);
        let resp = PoolResponse::Rows(vec![vec![Value::Int(3), Value::Str("a".into())]]);
        let wire = resp.encode().unwrap();
        let got = PoolResponse::decode(&wire).unwrap();
        assert_eq!(got.encode().unwrap(), wire);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut wire = SsiRequest::Envelope(3).encode().unwrap();
        wire.push(0);
        assert!(SsiRequest::decode(&wire).is_err());
    }

    #[test]
    fn fault_plan_corrupted_messages_never_panic() {
        use tdsql_core::connectivity::FaultPlan;

        // The fault plan's corruption leg, applied to whole wire messages:
        // decode must yield a typed error or some valid message, never a
        // panic. Both directions of both protocols are swept.
        let plan = FaultPlan::seeded(23).with_corruption(1.0);
        let messages = vec![
            SsiRequest::PostQuery(sample_envelope()).encode().unwrap(),
            SsiResponse::Tuples(vec![StoredTuple {
                tag: GroupTag::Det(Bytes::from(vec![1, 2, 3])),
                blob: Bytes::from(vec![7; 64]),
            }])
            .encode()
            .unwrap(),
            PoolRequest::Step {
                index: 0,
                env: sample_envelope(),
                params: ProtocolParams::new(ProtocolKind::CNoise),
                now_round: 3,
                step: TdsStep::Collect,
                partition: vec![],
                rng_seed: 9,
            }
            .encode()
            .unwrap(),
            PoolResponse::Rows(vec![vec![Value::Int(1), Value::Float(2.5)]])
                .encode()
                .unwrap(),
        ];
        for (m, wire) in messages.into_iter().enumerate() {
            for item in 0..32u64 {
                let corrupted =
                    plan.corrupt_blob(&Bytes::from(wire.clone()), Phase::Aggregation, item, 0);
                let as_ssi_req = SsiRequest::decode(&corrupted);
                let as_ssi_resp = SsiResponse::decode(&corrupted);
                let as_pool_req = PoolRequest::decode(&corrupted);
                let as_pool_resp = PoolResponse::decode(&corrupted);
                for err in [
                    as_ssi_req.err(),
                    as_ssi_resp.err(),
                    as_pool_req.err(),
                    as_pool_resp.err(),
                ]
                .into_iter()
                .flatten()
                {
                    assert!(
                        matches!(err, ProtocolError::Codec(_) | ProtocolError::Sql(_)),
                        "message {m} corruption {item}: unexpected error class: {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_and_corrupted_messages_fail_typed() {
        let wire = SsiRequest::PostQuery(sample_envelope()).encode().unwrap();
        // Every strict prefix must fail with a typed Codec error, never
        // panic or mis-decode.
        for cut in 0..wire.len() {
            match SsiRequest::decode(&wire[..cut]) {
                Err(ProtocolError::Codec(_)) => {}
                Ok(req) => panic!("prefix of len {cut} decoded as {}", req.name()),
                Err(other) => panic!("prefix of len {cut}: unexpected {other:?}"),
            }
        }
    }
}
