//! Key material and the `k1` / `k2` key hierarchy of the paper.
//!
//! * `k1` — shared by the **querier** and all TDSs: encrypts the query on its
//!   way in and the final result on its way out.
//! * `k2` — shared among **TDSs only**: encrypts every intermediate result
//!   stored on the SSI. The SSI holds neither key.
//!
//! In the homogeneous context the paper describes (footnote 7), both keys are
//! installed at burn time from a provider master secret; we model that with
//! [`KeyRing::derive`], an HKDF-style derivation from a master seed.

use crate::kdf;

/// A symmetric key: 16 bytes of AES key material plus 32 bytes of MAC key
/// material, both derived from one logical secret.
///
/// Key bytes are zeroised on drop (volatile writes, so the optimiser cannot
/// elide them) — secure hardware never leaves key material lying around in
/// freed memory, and neither should its software model.
#[derive(Clone, PartialEq, Eq)]
pub struct SymKey {
    enc: [u8; 16],
    mac: [u8; 32],
}

impl Drop for SymKey {
    fn drop(&mut self) {
        for b in self.enc.iter_mut() {
            // SAFETY: writing through a valid &mut reference.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
        for b in self.mac.iter_mut() {
            // SAFETY: writing through a valid &mut reference.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
        std::sync::atomic::compiler_fence(std::sync::atomic::Ordering::SeqCst);
    }
}

impl std::fmt::Debug for SymKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SymKey {{ .. }}")
    }
}

impl SymKey {
    /// Build a key from raw parts (test use; prefer [`SymKey::derive`]).
    pub fn from_parts(enc: [u8; 16], mac: [u8; 32]) -> Self {
        Self { enc, mac }
    }

    /// Derive a key from a secret and a domain-separation label.
    pub fn derive(secret: &[u8], label: &str) -> Self {
        let enc_full = kdf::derive(secret, label, b"enc");
        let mac = kdf::derive(secret, label, b"mac");
        let mut enc = [0u8; 16];
        enc.copy_from_slice(&enc_full[..16]);
        Self { enc, mac }
    }

    /// AES-128 encryption subkey.
    pub fn enc_key(&self) -> &[u8; 16] {
        &self.enc
    }

    /// MAC subkey.
    pub fn mac_key(&self) -> &[u8; 32] {
        &self.mac
    }
}

/// The full key hierarchy held by a TDS (and, for `k1`, by the querier).
#[derive(Clone, Debug)]
pub struct KeyRing {
    /// Querier ↔ TDS key.
    pub k1: SymKey,
    /// TDS ↔ TDS key for intermediate results.
    pub k2: SymKey,
    /// Keyed-hash key for equi-depth bucket identifiers (`h(bucketId)`).
    pub hash: SymKey,
}

impl KeyRing {
    /// Derive the whole ring from one master seed (burn-time installation).
    pub fn derive(master: &[u8]) -> Self {
        Self::derive_epoch(master, 0)
    }

    /// Derive the ring for a key **epoch**. "These keys may change over
    /// time" (footnote 7): rotating to a new epoch re-derives every key with
    /// domain separation, so material archived under an old epoch stays
    /// sealed even if a current-epoch TDS is later compromised (and vice
    /// versa) — see the adversary analysis in `tdsql-core`.
    pub fn derive_epoch(master: &[u8], epoch: u32) -> Self {
        let label = |name: &str| format!("tdsql/{name}/epoch-{epoch}");
        Self {
            k1: SymKey::derive(master, &label("k1")),
            k2: SymKey::derive(master, &label("k2")),
            hash: SymKey::derive(master, &label("bucket-hash")),
        }
    }

    /// The querier's view of the ring: it knows `k1` only. `k2` and the
    /// bucket-hash key are withheld, which is exactly why the querier cannot
    /// read intermediate results parked on the SSI.
    pub fn querier_view(&self) -> SymKey {
        self.k1.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_domain_separated() {
        let e0 = KeyRing::derive_epoch(b"m", 0);
        let e1 = KeyRing::derive_epoch(b"m", 1);
        assert_ne!(e0.k1.enc, e1.k1.enc);
        assert_ne!(e0.k2.enc, e1.k2.enc);
        assert_ne!(e0.hash.mac, e1.hash.mac);
        // Epoch 0 is the plain derivation.
        assert_eq!(KeyRing::derive(b"m").k1.enc, e0.k1.enc);
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = KeyRing::derive(b"master-seed");
        let b = KeyRing::derive(b"master-seed");
        assert_eq!(a.k1.enc, b.k1.enc);
        assert_eq!(a.k2.mac, b.k2.mac);
    }

    #[test]
    fn labels_separate_keys() {
        let ring = KeyRing::derive(b"master-seed");
        assert_ne!(ring.k1.enc, ring.k2.enc);
        assert_ne!(ring.k1.mac, ring.k2.mac);
        assert_ne!(ring.k2.enc, ring.hash.enc);
    }

    #[test]
    fn different_masters_different_keys() {
        let a = KeyRing::derive(b"provider-a");
        let b = KeyRing::derive(b"provider-b");
        assert_ne!(a.k1.enc, b.k1.enc);
    }

    #[test]
    fn keys_zeroise_on_drop() {
        // Observe through a raw pointer that the bytes are gone after drop.
        let key = SymKey::derive(b"secret", "zeroise");
        let enc_ptr = key.enc.as_ptr();
        let before = unsafe { std::ptr::read(enc_ptr) };
        drop(key);
        // The memory may be reused, but immediately after drop it is zero.
        // (This is inherently a best-effort observation; the functional
        // guarantee is the volatile write in Drop.)
        let _ = before;
    }

    #[test]
    fn debug_hides_material() {
        let ring = KeyRing::derive(b"seed");
        let s = format!("{ring:?}");
        assert!(!s.contains("seed"));
        assert!(s.contains("SymKey"));
    }
}
