//! End-to-end tests of the **basic protocol** (Select-From-Where).

mod common;

use common::assert_rows_eq;
use tdsql_core::access::{AccessPolicy, Grant};
use tdsql_core::connectivity::Connectivity;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::stats::Phase;
use tdsql_core::workload::{health_survey, HealthConfig};
use tdsql_crypto::credential::Role;
use tdsql_sql::engine::execute;
use tdsql_sql::parser::parse_query;

fn policy() -> AccessPolicy {
    AccessPolicy::allow_all(Role::new("physician"))
}

#[test]
fn select_where_matches_oracle() {
    let (dbs, oracle) = health_survey(&HealthConfig {
        n_tds: 25,
        ..Default::default()
    });
    let query = parse_query("SELECT pid, city FROM health WHERE age >= 80 AND flu = TRUE").unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;

    let mut world = SimBuilder::new().seed(3).build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let rows = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert_rows_eq(rows, expected, "basic SFW");
}

#[test]
fn projection_expressions_and_wildcard() {
    let (dbs, oracle) = health_survey(&HealthConfig {
        n_tds: 12,
        ..Default::default()
    });
    for sql in [
        "SELECT * FROM health WHERE city = 'Memphis'",
        "SELECT pid, age + 1 AS next_age FROM health WHERE age BETWEEN 20 AND 60",
        "SELECT pid FROM health WHERE city LIKE 'K%' OR flu = TRUE",
    ] {
        let query = parse_query(sql).unwrap();
        let expected = execute(&oracle, &query).unwrap().rows;
        let mut world = SimBuilder::new().seed(4).build(dbs.clone(), policy());
        let querier = world.make_querier("dr-smith", "physician");
        let rows = world
            .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
            .unwrap();
        assert_rows_eq(rows, expected, sql);
    }
}

#[test]
fn every_tds_answers_with_dummy_or_tuple() {
    // The covering result must contain at least one tuple per contacted TDS
    // even when the WHERE clause selects nobody — that is what hides the
    // selectivity from the SSI.
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 15,
        ..Default::default()
    });
    let n = dbs.len();
    let query = parse_query("SELECT pid FROM health WHERE age > 100000").unwrap();
    let mut world = SimBuilder::new().seed(5).build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let rows = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert!(rows.is_empty(), "nobody matches");
    // The SSI stored one (dummy) tuple per TDS during collection.
    assert_eq!(
        world.stats.phase(Phase::Collection).ssi_tuples_stored,
        n as u64
    );
}

#[test]
fn unauthorized_role_sees_nothing_but_protocol_completes() {
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 10,
        ..Default::default()
    });
    let n = dbs.len();
    let query = parse_query("SELECT pid FROM health").unwrap();
    let mut world = SimBuilder::new().seed(6).build(dbs, policy());
    let querier = world.make_querier("insurer", "marketing");
    let rows = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert!(
        rows.is_empty(),
        "denied everywhere → only dummies → empty result"
    );
    // Dummies still flowed: denial is invisible at the SSI.
    assert_eq!(
        world.stats.phase(Phase::Collection).ssi_tuples_stored,
        n as u64
    );
}

#[test]
fn column_restricted_grant() {
    let (dbs, oracle) = health_survey(&HealthConfig {
        n_tds: 10,
        ..Default::default()
    });
    let mut p = AccessPolicy::deny_all();
    p.add(Grant::Columns {
        role: Role::new("stats"),
        table: "health".into(),
        columns: ["age", "city"].iter().map(|s| s.to_string()).collect(),
    });
    let mut world = SimBuilder::new().seed(7).build(dbs, p);
    let querier = world.make_querier("inst", "stats");

    let allowed = parse_query("SELECT age FROM health WHERE city = 'Memphis'").unwrap();
    let expected = execute(&oracle, &allowed).unwrap().rows;
    let rows = world
        .run_query(&querier, &allowed, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert_rows_eq(rows, expected, "column-granted query");

    let forbidden = parse_query("SELECT pid FROM health").unwrap();
    let rows = world
        .run_query(
            &querier,
            &forbidden,
            ProtocolParams::new(ProtocolKind::Basic),
        )
        .unwrap();
    assert!(rows.is_empty(), "pid is not granted");
}

#[test]
fn size_clause_bounds_collection() {
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 40,
        ..Default::default()
    });
    // Each TDS contributes exactly one tuple; SIZE 10 stops the window early.
    let query = parse_query("SELECT pid FROM health SIZE 10").unwrap();
    let mut world = SimBuilder::new()
        .seed(8)
        .connectivity(Connectivity::fraction(0.25))
        .build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let rows = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    let collected = world.stats.phase(Phase::Collection).ssi_tuples_stored;
    assert!(collected >= 10, "window closes only once SIZE is reached");
    assert!(collected < 40, "window closed early (got {collected})");
    assert!(rows.len() <= collected as usize);
}

#[test]
fn size_rounds_bounds_duration() {
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 40,
        ..Default::default()
    });
    let query = parse_query("SELECT pid FROM health SIZE 3 ROUNDS").unwrap();
    let mut world = SimBuilder::new()
        .seed(9)
        .connectivity(Connectivity::fraction(0.1))
        .build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let _ = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert!(world.stats.phase(Phase::Collection).steps <= 3);
}

#[test]
fn partial_connectivity_still_complete() {
    // With 20% connectivity per round and no SIZE bound, collection keeps
    // running until everyone has contributed: the result is complete.
    let (dbs, oracle) = health_survey(&HealthConfig {
        n_tds: 30,
        ..Default::default()
    });
    let query = parse_query("SELECT pid FROM health WHERE flu = TRUE").unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;
    let mut world = SimBuilder::new()
        .seed(10)
        .connectivity(Connectivity::fraction(0.2))
        .build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let rows = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap();
    assert_rows_eq(rows, expected, "partial connectivity");
    assert!(
        world.stats.phase(Phase::Collection).steps > 1,
        "took several rounds"
    );
}

#[test]
fn basic_protocol_rejects_aggregate_queries() {
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 5,
        ..Default::default()
    });
    let query = parse_query("SELECT COUNT(*) FROM health").unwrap();
    let mut world = SimBuilder::new().seed(11).build(dbs, policy());
    let querier = world.make_querier("dr-smith", "physician");
    let err = world
        .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::Basic))
        .unwrap_err();
    assert!(
        matches!(err, tdsql_core::ProtocolError::Unsupported(_)),
        "{err}"
    );
}
