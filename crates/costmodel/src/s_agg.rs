//! S_Agg analytical model (Section 6.1.1).
//!
//! The aggregation phase runs `n = log_α(Nt/G)` iterations; iteration `i`
//! mobilises `N_i = (Nt/G)·α^{-i}` TDSs, each processing α·G partial-
//! aggregate entries and emitting G. Hence
//!
//! ```text
//! T_Q     = (α+1) · log_α(Nt/G) · G · Tt
//! P_TDS   = (Nt/G) · Σ α^{-i}
//! Load_Q  = (1 + 2·Σ α^{-i}) · Nt · st
//! T_local = (Nt + α·G·Σ_{i≥2} N_i) · Tt / P_TDS
//! ```
//!
//! Availability: iteration `i` needs `N_i` TDSs; when fewer are connected it
//! runs in waves. With the paper's settings `N_1 = Nt/(α·G) ≈ 250 ≪ 10%·Nt`,
//! so S_Agg is essentially insensitive to availability — its (lack of)
//! elasticity in Fig. 10e/i/j.

use crate::params::{waves, Metrics, ModelParams, ProtocolModel};

/// The S_Agg model.
#[derive(Debug, Clone, Copy, Default)]
pub struct SAggModel;

impl SAggModel {
    /// Number of aggregation iterations `n = ⌈log_α(Nt/G)⌉ ≥ 1`.
    ///
    /// Counted by an integer power loop, not `log().ceil()`: at exact powers
    /// of α the float log can land a hair above the integer (e.g.
    /// `1024f64.log(2.0) == 10.000000000000002`), and `ceil` then over-counts
    /// a whole iteration — a +10% T_Q error for the cost model. The epsilon
    /// guard absorbs the opposite rounding (log a hair *below* the integer).
    pub fn iterations(p: &ModelParams) -> u32 {
        let ratio = (p.nt / p.g).max(p.alpha);
        let mut n = 0u32;
        let mut acc = 1.0f64;
        while acc * (1.0 + 1e-9) < ratio {
            acc *= p.alpha;
            n += 1;
        }
        n.max(1)
    }

    /// TDSs mobilised at iteration `i` (1-based): `(Nt/G)·α^{-i}`, at least 1.
    pub fn tds_at_step(p: &ModelParams, i: u32) -> f64 {
        ((p.nt / p.g) * p.alpha.powi(-(i as i32))).max(1.0)
    }
}

impl ProtocolModel for SAggModel {
    fn name(&self) -> String {
        "S_Agg".into()
    }

    fn metrics(&self, p: &ModelParams) -> Metrics {
        let n = Self::iterations(p);
        let available = p.available_tds();

        let mut ptds = 0.0;
        let mut tq = 0.0;
        let mut later_inputs = 0.0; // α·G·Σ_{i≥2} N_i
        for i in 1..=n {
            let n_i = Self::tds_at_step(p, i);
            ptds += n_i;
            // Each wave of iteration i costs (α+1)·G·Tt (download αG entries,
            // upload G).
            tq += waves(n_i, available) * (p.alpha + 1.0) * p.g * p.tt;
            if i >= 2 {
                later_inputs += p.alpha * p.g * n_i;
            }
        }
        let sum_ainv: f64 = (1..=n).map(|i| p.alpha.powi(-(i as i32))).sum();
        let load_bytes = (1.0 + 2.0 * sum_ainv) * p.nt * p.st;
        let tlocal = (p.nt + later_inputs) * p.tt / ptds.max(1.0);
        Metrics {
            ptds,
            load_bytes,
            tq,
            tlocal,
        }
    }
}

impl SAggModel {
    /// RAM-limit ablation (Section 4.2's correctness caveat): every TDS must
    /// hold a partial-aggregate structure of `G` entries. When `G` exceeds
    /// `ram_groups`, the overflow fraction of every access pays
    /// `swap_penalty`× the in-RAM per-tuple cost (swapping to NAND). Returns
    /// the metrics with the inflated T_Q / T_local.
    pub fn metrics_with_ram(&self, p: &ModelParams, ram_groups: f64, swap_penalty: f64) -> Metrics {
        let base = self.metrics(p);
        let overflow = ((p.g - ram_groups) / p.g).clamp(0.0, 1.0);
        let factor = 1.0 + overflow * (swap_penalty - 1.0).max(0.0);
        Metrics {
            tq: base.tq * factor,
            tlocal: base.tlocal * factor,
            ..base
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests sweep one field at a time
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_at_paper_defaults() {
        let p = ModelParams::default();
        let m = SAggModel.metrics(&p);
        // n = log_3.59(1000) = 5.4 → 6 iterations; T_Q = n(α+1)G·Tt.
        let n = SAggModel::iterations(&p);
        assert_eq!(n, 6);
        let expected_tq = n as f64 * (p.alpha + 1.0) * p.g * p.tt;
        assert!((m.tq - expected_tq).abs() / expected_tq < 1e-9, "{}", m.tq);
        // Fig. 10e shows S_Agg ≈ 0.4 s at G = 10³.
        assert!(m.tq > 0.2 && m.tq < 0.8, "T_Q = {}", m.tq);
    }

    /// Regression for the float-precision over-count: at exact powers of α,
    /// `log().ceil()` used to return n+1 (`1024f64.log(2.0)` is
    /// 10.000000000000002), inflating every S_Agg latency estimate by one
    /// full iteration.
    #[test]
    fn exact_powers_of_alpha_do_not_overcount() {
        let mut p = ModelParams::default();
        p.alpha = 2.0;
        p.g = 1.0;
        for n in 1..=20u32 {
            p.nt = 2f64.powi(n as i32);
            assert_eq!(
                SAggModel::iterations(&p),
                n,
                "Nt/G = 2^{n} must take exactly {n} halving iterations"
            );
        }
        // Just past a power needs one more iteration; just under stays.
        p.nt = 1025.0;
        assert_eq!(SAggModel::iterations(&p), 11);
        p.nt = 1023.0;
        assert_eq!(SAggModel::iterations(&p), 10);
        // α itself: a ratio clamped up to α is one iteration.
        p.nt = 1.0;
        assert_eq!(SAggModel::iterations(&p), 1);
    }

    #[test]
    fn ptds_is_geometric_sum() {
        let p = ModelParams::default();
        let m = SAggModel.metrics(&p);
        // Σ N_i ≈ (Nt/G)/(α−1) = 1000/2.59 ≈ 386.
        assert!(m.ptds > 300.0 && m.ptds < 500.0, "P_TDS = {}", m.ptds);
    }

    #[test]
    fn load_close_to_nt_st() {
        let p = ModelParams::default();
        let m = SAggModel.metrics(&p);
        // (1 + 2Σα^{-i}) ∈ (1, 1.8): load is a small multiple of Nt·st.
        assert!(m.load_bytes > p.nt * p.st);
        assert!(m.load_bytes < 2.0 * p.nt * p.st);
    }

    #[test]
    fn tq_grows_with_g() {
        let mut p = ModelParams::default();
        let small = SAggModel.metrics(&p).tq;
        p.g = 1e5;
        let large = SAggModel.metrics(&p).tq;
        assert!(large > small, "S_Agg responsiveness degrades with G");
    }

    #[test]
    fn insensitive_to_availability_at_defaults() {
        let mut p = ModelParams::default();
        p.availability = 0.01;
        let scarce = SAggModel.metrics(&p).tq;
        p.availability = 1.0;
        let abundant = SAggModel.metrics(&p).tq;
        assert!(
            (scarce - abundant).abs() / abundant < 1e-9,
            "S_Agg's parallelism never exceeds 1% of Nt at the defaults"
        );
    }

    #[test]
    fn ram_ablation_kicks_in_beyond_the_limit() {
        // 64 KB RAM at ~32 B per partial-aggregate entry ≈ 2 000 groups.
        let ram_groups = 2_000.0;
        let swap = 20.0; // NAND write ≫ RAM access
        let mut p = ModelParams::default();
        p.g = 1e3; // fits
        let fits = SAggModel.metrics_with_ram(&p, ram_groups, swap);
        assert!((fits.tq - SAggModel.metrics(&p).tq).abs() < 1e-12);
        p.g = 1e5; // 98% overflow
        let thrashes = SAggModel.metrics_with_ram(&p, ram_groups, swap);
        let base = SAggModel.metrics(&p);
        assert!(
            thrashes.tq > 15.0 * base.tq,
            "swapping must dominate: {} vs {}",
            thrashes.tq,
            base.tq
        );
        assert_eq!(
            thrashes.load_bytes, base.load_bytes,
            "bytes unchanged, time inflated"
        );
    }

    #[test]
    fn tq_grows_with_nt() {
        let mut p = ModelParams::default();
        let small = SAggModel.metrics(&p).tq;
        p.nt = 65e6;
        let large = SAggModel.metrics(&p).tq;
        assert!(large > small, "more iterations at larger Nt");
    }
}
