//! Access-control enforcement inside each TDS.
//!
//! "TDSs are assumed to answer only authorized queries, meaning that they are
//! aware of the access control policy and of the querier credentials"
//! (Section 3.1). The policy grants roles access to tables (optionally
//! restricted to columns). A TDS receiving a query from an insufficiently
//! privileged querier does **not** refuse — it answers with a dummy tuple, so
//! even the *fact* of denial is invisible to the SSI and the querier.

use std::collections::BTreeSet;

use tdsql_crypto::credential::Role;
use tdsql_sql::ast::{ColumnRef, Expr, Query, SelectItem};

/// One policy grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// The role may query every table and column.
    All {
        /// Granted role.
        role: Role,
    },
    /// The role may query one table, every column.
    Table {
        /// Granted role.
        role: Role,
        /// Table name (lowercase).
        table: String,
    },
    /// The role may query one table, listed columns only.
    Columns {
        /// Granted role.
        role: Role,
        /// Table name (lowercase).
        table: String,
        /// Allowed column names (lowercase).
        columns: BTreeSet<String>,
    },
}

/// The access-control policy installed in a TDS (by the producer organism,
/// the legislator or a consumer association — Section 2.1).
#[derive(Debug, Clone, Default)]
pub struct AccessPolicy {
    grants: Vec<Grant>,
}

/// Collect every column reference appearing anywhere in a query.
fn collect_columns(q: &Query) -> Vec<ColumnRef> {
    fn walk(expr: &Expr, out: &mut Vec<ColumnRef>) {
        match expr {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
                walk(expr, out)
            }
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Aggregate(call) => {
                if let Some(arg) = &call.arg {
                    walk(arg, out);
                }
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                for e in list {
                    walk(e, out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
        }
    }
    let mut out = Vec::new();
    for item in &q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut out);
        }
    }
    if let Some(w) = &q.where_clause {
        walk(w, &mut out);
    }
    for g in &q.group_by {
        walk(g, &mut out);
    }
    if let Some(h) = &q.having {
        walk(h, &mut out);
    }
    out
}

impl AccessPolicy {
    /// Empty policy: everything is denied.
    pub fn deny_all() -> Self {
        Self::default()
    }

    /// Policy granting a role full access.
    pub fn allow_all(role: Role) -> Self {
        let mut p = Self::default();
        p.add(Grant::All { role });
        p
    }

    /// Add a grant.
    pub fn add(&mut self, grant: Grant) {
        self.grants.push(grant);
    }

    /// May `role` run `q`? Every table in the FROM list must be granted; when
    /// a grant restricts columns, every column that may resolve to that table
    /// (qualified to its binding, or unqualified with a wildcard SELECT
    /// counting as "all columns") must be allowed.
    pub fn allows(&self, role: &Role, q: &Query) -> bool {
        let columns = collect_columns(q);
        let has_wildcard = q.select.iter().any(|s| matches!(s, SelectItem::Wildcard));
        for t in &q.from {
            let binding = t.binding();
            // Find the strongest grant for this table.
            let grant = self.grants.iter().find(|g| match g {
                Grant::All { role: r } => r == role,
                Grant::Table { role: r, table } | Grant::Columns { role: r, table, .. } => {
                    r == role && *table == t.table
                }
            });
            match grant {
                None => return false,
                Some(Grant::All { .. }) | Some(Grant::Table { .. }) => {}
                Some(Grant::Columns {
                    columns: allowed, ..
                }) => {
                    if has_wildcard {
                        return false;
                    }
                    for c in &columns {
                        let may_target_this_table = match &c.table {
                            Some(tb) => tb == binding,
                            None => true, // unqualified could resolve here
                        };
                        if may_target_this_table && !allowed.contains(&c.column) {
                            // An unqualified column might belong to another,
                            // fully-granted table; only deny when no other
                            // FROM table is fully granted for this role.
                            let resolvable_elsewhere = c.table.is_none()
                                && q.from.iter().any(|other| {
                                    other.binding() != binding
                                        && self.grants.iter().any(|g| match g {
                                            Grant::All { role: r } => r == role,
                                            Grant::Table { role: r, table } => {
                                                r == role && *table == other.table
                                            }
                                            Grant::Columns {
                                                role: r,
                                                table,
                                                columns,
                                            } => {
                                                r == role
                                                    && *table == other.table
                                                    && columns.contains(&c.column)
                                            }
                                        })
                                });
                            if !resolvable_elsewhere {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdsql_sql::parser::parse_query;

    fn role(name: &str) -> Role {
        Role::new(name)
    }

    #[test]
    fn allow_all_permits_everything() {
        let p = AccessPolicy::allow_all(role("supplier"));
        let q = parse_query("SELECT AVG(cons) FROM power GROUP BY district").unwrap();
        assert!(p.allows(&role("supplier"), &q));
        assert!(!p.allows(&role("stranger"), &q));
    }

    #[test]
    fn deny_all_denies() {
        let p = AccessPolicy::deny_all();
        let q = parse_query("SELECT 1 FROM power").unwrap();
        assert!(!p.allows(&role("anyone"), &q));
    }

    #[test]
    fn table_grant_scopes_by_table() {
        let mut p = AccessPolicy::deny_all();
        p.add(Grant::Table {
            role: role("doctor"),
            table: "health".into(),
        });
        let ok = parse_query("SELECT age FROM health").unwrap();
        let bad = parse_query("SELECT cons FROM power").unwrap();
        let join = parse_query("SELECT h.age FROM health h, power p").unwrap();
        assert!(p.allows(&role("doctor"), &ok));
        assert!(!p.allows(&role("doctor"), &bad));
        assert!(
            !p.allows(&role("doctor"), &join),
            "join touches an ungranted table"
        );
    }

    #[test]
    fn column_grant_enforced() {
        let mut p = AccessPolicy::deny_all();
        p.add(Grant::Columns {
            role: role("stats"),
            table: "power".into(),
            columns: ["cons", "district"].iter().map(|s| s.to_string()).collect(),
        });
        let ok = parse_query("SELECT AVG(cons) FROM power GROUP BY district").unwrap();
        let bad = parse_query("SELECT cid FROM power").unwrap();
        let wild = parse_query("SELECT * FROM power").unwrap();
        assert!(p.allows(&role("stats"), &ok));
        assert!(!p.allows(&role("stats"), &bad));
        assert!(
            !p.allows(&role("stats"), &wild),
            "wildcard needs full-table grant"
        );
    }

    #[test]
    fn where_and_having_columns_checked() {
        let mut p = AccessPolicy::deny_all();
        p.add(Grant::Columns {
            role: role("stats"),
            table: "power".into(),
            columns: ["cons"].iter().map(|s| s.to_string()).collect(),
        });
        let bad = parse_query("SELECT AVG(cons) FROM power WHERE cid = 3").unwrap();
        assert!(!p.allows(&role("stats"), &bad));
        let bad2 =
            parse_query("SELECT AVG(cons) FROM power GROUP BY cons HAVING COUNT(DISTINCT cid) > 1")
                .unwrap();
        assert!(!p.allows(&role("stats"), &bad2));
    }

    #[test]
    fn unqualified_column_resolvable_via_other_granted_table() {
        let mut p = AccessPolicy::deny_all();
        p.add(Grant::Columns {
            role: role("r"),
            table: "power".into(),
            columns: ["cons"].iter().map(|s| s.to_string()).collect(),
        });
        p.add(Grant::Table {
            role: role("r"),
            table: "consumer".into(),
        });
        // `district` is not in power's grant but consumer is fully granted.
        let q = parse_query("SELECT AVG(cons) FROM power p, consumer c GROUP BY district").unwrap();
        assert!(p.allows(&role("r"), &q));
    }
}
