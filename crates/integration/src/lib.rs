//! Carrier crate: see `/tests` and `/examples`.
