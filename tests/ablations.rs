//! Ablations of the design choices DESIGN.md calls out:
//!
//! * the S_Agg reduction factor α (the paper derives α_op ≈ 3.6),
//! * ED_Hist running with a **stale** histogram (the discovery snapshot is
//!   refreshed "from time to time", not per query),
//! * amortised discovery via `SimWorld::prepare_params`.

mod common;

use common::assert_rows_eq;
use tdsql_core::access::AccessPolicy;
use tdsql_core::histogram::Histogram;
use tdsql_core::message::GroupTag;
use tdsql_core::protocol::{discovery, ProtocolKind, ProtocolParams};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::stats::Phase;
use tdsql_core::workload::{smart_meters, Skew, SmartMeterConfig};
use tdsql_crypto::credential::Role;
use tdsql_sql::engine::execute;
use tdsql_sql::parser::parse_query;
use tdsql_sql::value::{GroupKey, Value};

const SQL: &str = "SELECT c.district, COUNT(*) FROM consumer c GROUP BY c.district";

#[test]
fn alpha_sweep_changes_rounds_not_results() {
    // Larger α ⇒ fewer iterations but bigger partitions; the result never
    // changes. (The model's optimum balances the two; the functional
    // simulator exposes the iteration count.)
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 120,
        districts: 4,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;
    let mut steps_by_alpha = Vec::new();
    for alpha in [2usize, 4, 16] {
        let mut world = SimBuilder::new()
            .seed(700)
            .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
        let querier = world.make_querier("q", "supplier");
        let mut params = ProtocolParams::new(ProtocolKind::SAgg);
        params.chunk = 8;
        params.alpha = alpha;
        let rows = world.run_query(&querier, &query, params).unwrap();
        assert_rows_eq(rows, expected.clone(), &format!("alpha={alpha}"));
        steps_by_alpha.push((alpha, world.stats.phase(Phase::Aggregation).steps));
    }
    assert!(
        steps_by_alpha[0].1 > steps_by_alpha[2].1,
        "α=2 must iterate more than α=16: {steps_by_alpha:?}"
    );
}

#[test]
fn stale_histogram_stays_correct_but_leaks_skew() {
    // Build a histogram from a *uniform* snapshot, then run over data that
    // has since become heavily skewed: correctness is untouched (bucket
    // assignment only routes tuples), but the observed bucket distribution
    // is no longer flat — quantifying why the paper refreshes discovery.
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 150,
        districts: 6,
        skew: Skew::Zipf(1.4),
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;

    // Stale snapshot: pretend every district once had equal counts.
    let stale_dist: Vec<(GroupKey, u64)> = (0..6)
        .map(|d| {
            (
                GroupKey::from_values(&[Value::Str(format!("district-{d:04}"))]),
                25u64,
            )
        })
        .collect();
    let stale_hist = Histogram::build(&stale_dist, 3);

    let run = |hist: Histogram, seed: u64| {
        let mut world = SimBuilder::new()
            .seed(seed)
            .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
        let querier = world.make_querier("q", "supplier");
        let mut params = ProtocolParams::new(ProtocolKind::EdHist { buckets: 3 });
        params.histogram = Some(hist);
        let rows = world.run_query(&querier, &query, params).unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for obs in &world.ssi.observations() {
            if obs.phase == Phase::Collection {
                if let GroupTag::Bucket(_) = obs.tag {
                    *counts.entry(obs.tag.clone()).or_insert(0u64) += 1;
                }
            }
        }
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        (rows, max / min)
    };

    let (stale_rows, stale_skew) = run(stale_hist, 701);
    assert_rows_eq(stale_rows, expected.clone(), "stale histogram");

    // Fresh snapshot for comparison.
    let fresh_dist = {
        let mut world = SimBuilder::new()
            .seed(702)
            .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
        discovery::discover_distribution(&mut world, &query).unwrap()
    };
    let (fresh_rows, fresh_skew) = run(Histogram::build(&fresh_dist, 3), 703);
    assert_rows_eq(fresh_rows, expected, "fresh histogram");

    assert!(
        stale_skew > fresh_skew,
        "staleness must cost uniformity: stale {stale_skew:.2} vs fresh {fresh_skew:.2}"
    );
}

#[test]
fn prepared_params_amortise_discovery() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 60,
        districts: 4,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;
    let mut world = SimBuilder::new()
        .seed(704)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("q", "supplier");

    // One discovery, three queries.
    let params = world
        .prepare_params(&query, ProtocolKind::EdHist { buckets: 2 })
        .unwrap();
    assert!(params.histogram.is_some());
    let observations_after_discovery = world.ssi.observations_len();
    for _ in 0..3 {
        let rows = world.run_query(&querier, &query, params.clone()).unwrap();
        assert_rows_eq(rows, expected.clone(), "prepared params");
    }
    // No further discovery traffic: the only new query ids belong to the
    // three target queries (one collection round each + aggregation), and
    // the histogram was reused verbatim.
    let new_ids: std::collections::BTreeSet<u64> = world
        .ssi
        .observations()
        .iter()
        .skip(observations_after_discovery)
        .map(|o| o.query_id)
        .collect();
    assert_eq!(new_ids.len(), 3, "three queries, zero extra discoveries");
}
