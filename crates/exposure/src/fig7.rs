//! The worked Accounts example of Fig. 7: one table, all schemes, the IC
//! tables and the association-inference probability the paper walks through.

use crate::coefficient::{exposure_coefficient, ExposureReport};
use crate::schemes::{column_ic, ColumnScheme};
use crate::table::{PlainColumn, PlainTable};

/// The Accounts table of Fig. 7 (after Damiani et al.): Alice holds two
/// accounts with the most frequent balance, so Det_Enc discloses both the
/// values and the association ⟨Alice, 200⟩ with probability 1.
pub fn accounts_table() -> PlainTable {
    PlainTable::new(vec![
        PlainColumn::new(
            "account",
            ["Acc1", "Acc2", "Acc3", "Acc4", "Acc5"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        PlainColumn::new(
            "customer",
            ["Alice", "Alice", "Bob", "Chris", "Donna"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        PlainColumn::new(
            "balance",
            ["200", "200", "100", "300", "400"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
    ])
}

/// One scheme's row in the Fig. 7 comparison.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Scheme label as the paper names it.
    pub scheme: String,
    /// Full exposure report.
    pub report: ExposureReport,
    /// P(⟨Alice, 200⟩) — the association-inference probability for the
    /// highest-frequency pair.
    pub p_alice_200: f64,
}

/// Compute the Fig. 7 comparison across all schemes.
pub fn fig7_rows() -> Vec<Fig7Row> {
    let table = accounts_table();
    let schemes: Vec<(String, Vec<ColumnScheme>)> = vec![
        ("Plaintext".into(), vec![ColumnScheme::Plaintext; 3]),
        ("Det_Enc".into(), vec![ColumnScheme::Det; 3]),
        ("nDet_Enc (S_Agg)".into(), vec![ColumnScheme::NDet; 3]),
        (
            "R2_Noise".into(),
            vec![
                ColumnScheme::RnfNoise { nf: 2, seed: 42 },
                ColumnScheme::RnfNoise { nf: 2, seed: 43 },
                ColumnScheme::RnfNoise { nf: 2, seed: 44 },
            ],
        ),
        ("C_Noise".into(), vec![ColumnScheme::CNoise; 3]),
        (
            "ED_Hist (2 buckets)".into(),
            vec![ColumnScheme::EdHist { buckets: 2 }; 3],
        ),
        (
            "ED_Hist (h=1)".into(),
            vec![ColumnScheme::EdHist { buckets: 5 }; 3],
        ),
    ];
    schemes
        .into_iter()
        .map(|(name, cols)| {
            let report = exposure_coefficient(&table, &cols);
            // Association probability = IC(customer row 0) · IC(balance row 0).
            let customer_ic = column_ic(&table.columns[1], cols[1]);
            let balance_ic = column_ic(&table.columns[2], cols[2]);
            Fig7Row {
                scheme: name,
                report,
                p_alice_200: customer_ic[0] * balance_ic[0],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_discloses_alice_200_with_certainty() {
        let rows = fig7_rows();
        let det = rows.iter().find(|r| r.scheme == "Det_Enc").unwrap();
        assert_eq!(det.p_alice_200, 1.0, "the paper's association inference");
    }

    #[test]
    fn ndet_is_the_floor() {
        let rows = fig7_rows();
        let ndet = rows.iter().find(|r| r.scheme.starts_with("nDet")).unwrap();
        for r in &rows {
            assert!(
                r.report.epsilon >= ndet.report.epsilon - 1e-12,
                "{} below the nDet floor",
                r.scheme
            );
        }
        // Accounts: N = 5 accounts, 4 customers, 4 balances.
        assert!((ndet.report.epsilon - 1.0 / (5.0 * 4.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn plaintext_is_the_ceiling() {
        let rows = fig7_rows();
        let pt = rows.iter().find(|r| r.scheme == "Plaintext").unwrap();
        assert_eq!(pt.report.epsilon, 1.0);
        for r in &rows {
            assert!(r.report.epsilon <= 1.0 + 1e-12);
        }
    }
}
