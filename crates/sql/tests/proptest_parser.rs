//! Property tests for the SQL front end: any AST we can print must re-parse
//! to the identical AST, and evaluation must never panic on well-typed rows.

// The proptest dependency cannot be fetched in the hermetic build; these
// tests compile only with `--features proptest-tests` after restoring the
// `proptest` dev-dependency in a connected environment (see ARCHITECTURE.md).
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use tdsql_sql::ast::{
    AggCall, AggFunc, BinOp, ColumnRef, Expr, Query, SelectItem, SizeClause, TableRef, UnaryOp,
};
use tdsql_sql::parser::{parse_expr, parse_query};
use tdsql_sql::value::Value;

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        // Finite, non-exponential floats that Display round-trips exactly.
        (-1000i32..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-z ']{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Reserved words of the dialect — not valid bare identifiers.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "size", "tuples", "rounds", "as",
    "distinct", "and", "or", "not", "is", "in", "between", "like", "null", "true", "false",
    "order", "limit", "asc", "desc",
];

fn arb_ident(pattern: &'static str) -> impl Strategy<Value = String> {
    pattern
        .prop_map(|s: String| s.to_ascii_lowercase())
        .prop_filter("reserved word", |s| !RESERVED.contains(&s.as_str()))
}

fn arb_column() -> impl Strategy<Value = ColumnRef> {
    (
        proptest::option::of(arb_ident("[a-z][a-z0-9_]{0,6}")),
        arb_ident("[a-z][a-z0-9_]{0,8}"),
    )
        .prop_map(|(table, column)| ColumnRef { table, column })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
    ]
}

fn arb_aggfunc() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Avg),
        Just(AggFunc::Variance),
        Just(AggFunc::StdDev),
        Just(AggFunc::Median),
        Just(AggFunc::Mode),
    ]
}

/// Scalar (non-aggregate) expressions, recursion-bounded.
fn arb_scalar_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_column().prop_map(Expr::Column),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), arb_binop(), inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            // Negation of numeric literals folds in the parser, so generate
            // Neg only over column references (which never fold).
            arb_column().prop_map(|c| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::Column(c)),
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), "[a-z%_]{0,8}", any::<bool>()).prop_map(|(e, pattern, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern,
                    negated,
                }
            }),
        ]
    })
}

fn arb_agg_call() -> impl Strategy<Value = AggCall> {
    (
        arb_aggfunc(),
        proptest::option::of(arb_scalar_expr()),
        any::<bool>(),
    )
        .prop_map(|(func, arg, distinct)| {
            // COUNT may be star; everything else needs an argument.
            let arg = match (func, arg) {
                (AggFunc::Count, None) => None,
                (_, Some(a)) => Some(Box::new(a)),
                (_, None) => Some(Box::new(Expr::Column(ColumnRef::bare("x")))),
            };
            AggCall {
                func,
                arg,
                distinct,
            }
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    let table = (
        arb_ident("[a-z][a-z0-9_]{0,6}"),
        proptest::option::of(arb_ident("[a-z][a-z0-9_]{0,4}")),
    )
        .prop_map(|(t, a)| TableRef { table: t, alias: a });
    let select_item = prop_oneof![
        3 => arb_scalar_expr().prop_map(|e| SelectItem::Expr { expr: e, alias: None }),
        1 => arb_agg_call().prop_map(|c| SelectItem::Expr {
            expr: Expr::Aggregate(c),
            alias: None
        }),
        1 => Just(SelectItem::Wildcard),
    ];
    (
        prop::collection::vec(select_item, 1..4),
        prop::collection::vec(table, 1..3),
        proptest::option::of(arb_scalar_expr()),
        prop::collection::vec(arb_scalar_expr(), 0..3),
        proptest::option::of((proptest::option::of(0u64..100_000), any::<bool>())),
    )
        .prop_map(|(select, from, where_clause, group_by, size)| Query {
            select,
            from,
            where_clause,
            group_by,
            having: None,
            order_by: vec![],
            limit: None,
            size: size.map(|(tuples, rounds)| SizeClause {
                max_tuples: tuples.or(Some(1)),
                max_rounds: rounds.then_some(5),
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn expr_display_reparses(e in arb_scalar_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("{printed:?} failed to reparse: {err}"));
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn aggregate_display_reparses(c in arb_agg_call()) {
        let e = Expr::Aggregate(c);
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn query_display_reparses(q in arb_query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|err| panic!("{printed:?} failed to reparse: {err}"));
        prop_assert_eq!(reparsed, q, "printed: {}", printed);
    }

    /// The tokenizer never panics on arbitrary input.
    #[test]
    fn tokenizer_total(input in "\\PC{0,64}") {
        let _ = tdsql_sql::token::tokenize(&input);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total(input in "[a-zA-Z0-9 ,.()*'<>=!+%/-]{0,64}") {
        let _ = parse_query(&input);
        let _ = parse_expr(&input);
    }
}
