//! A minimal Rust lexer for the lint engine.
//!
//! [`scan`] produces two coupled views of one source file:
//!
//! * a **masked** copy — comments replaced by whitespace and string/char
//!   literal *contents* blanked (delimiters kept), with every newline
//!   preserved so line numbers survive masking; and
//! * a **token stream** — identifiers, numbers, punctuation (two-character
//!   operators like `==` and `::` kept whole), string/char placeholders and
//!   lifetimes, each tagged with its 0-based line.
//!
//! Rules that need word-exact matching (`mac == other` but not
//! `macro_like == other`) walk the tokens; rules that match multi-token
//! shapes (`Mutex<Vec<`) use the masked text. Neither view can be fooled by
//! a forbidden token inside a comment, a doc comment, or a string literal —
//! the failure modes of a purely lexical scanner.
//!
//! The lexer understands line comments, nested block comments, ordinary and
//! byte strings with escapes, raw strings with any number of `#` guards,
//! char/byte-char literals, and distinguishes `'a'` (char) from `'a`
//! (lifetime). It does not parse — rules that need structure (attribute →
//! struct body, cast operand) approximate it over the token stream.

/// What a token is; the lint rules mostly care about `Ident` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`len`, `as`, `Mutex`).
    Ident,
    /// A numeric literal (`42`, `0x1f`); suffixes stay attached (`7u32`).
    Number,
    /// A string literal (contents masked; `text` is empty).
    Str,
    /// A char or byte-char literal (contents masked; `text` is empty).
    Char,
    /// A lifetime (`'a`, `'static`); `text` keeps the leading `'`.
    Lifetime,
    /// Punctuation; two-character operators (`==`, `!=`, `::`, `..`) are
    /// one token.
    Punct,
}

/// One lexed token with its 0-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// 0-based line the token starts on.
    pub line: usize,
    /// Token text (empty for `Str`/`Char`, whose contents are masked).
    pub text: String,
}

/// The result of [`scan`]: the masked source and the token stream.
pub struct Scan {
    /// Source with comments and literal contents blanked, newlines intact.
    pub masked: String,
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
}

/// Two-character operators lexed as single `Punct` tokens.
const TWO_CHAR: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "<<", ">>", "..",
];

struct Lexer {
    cs: Vec<char>,
    i: usize,
    line: usize,
    masked: String,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.cs.get(self.i + off).copied()
    }

    /// Consume one char, blanking it in the masked view (newlines pass
    /// through so line numbering is preserved).
    fn bump_masked(&mut self) {
        if self.cs[self.i] == '\n' {
            self.masked.push('\n');
            self.line += 1;
        } else {
            self.masked.push(' ');
        }
        self.i += 1;
    }

    /// Consume one char verbatim into the masked view.
    fn bump_verbatim(&mut self) {
        let c = self.cs[self.i];
        if c == '\n' {
            self.line += 1;
        }
        self.masked.push(c);
        self.i += 1;
    }

    fn line_comment(&mut self) {
        while self.i < self.cs.len() && self.cs[self.i] != '\n' {
            self.bump_masked();
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.i < self.cs.len() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump_masked();
                self.bump_masked();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump_masked();
                self.bump_masked();
                if depth == 0 {
                    return;
                }
            } else {
                self.bump_masked();
            }
        }
    }

    /// At an opening `"`. `hashes` is the raw-string guard count; `raw`
    /// strings take no escapes.
    fn string(&mut self, hashes: usize, raw: bool) {
        let start_line = self.line;
        self.bump_verbatim(); // opening quote
        while self.i < self.cs.len() {
            let c = self.cs[self.i];
            if !raw && c == '\\' {
                self.bump_masked();
                if self.i < self.cs.len() {
                    self.bump_masked();
                }
                continue;
            }
            if c == '"' {
                if raw {
                    let closed = (0..hashes).all(|h| self.peek(1 + h) == Some('#'));
                    if !closed {
                        self.bump_masked();
                        continue;
                    }
                }
                self.bump_verbatim();
                for _ in 0..hashes {
                    self.bump_verbatim();
                }
                self.tokens.push(Token {
                    kind: TokenKind::Str,
                    line: start_line,
                    text: String::new(),
                });
                return;
            }
            self.bump_masked();
        }
        // Unterminated string: still record the token.
        self.tokens.push(Token {
            kind: TokenKind::Str,
            line: start_line,
            text: String::new(),
        });
    }

    /// At a `'`: a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
    fn char_or_lifetime(&mut self) {
        let start_line = self.line;
        if self.peek(1) == Some('\\') {
            self.bump_verbatim(); // '
            self.bump_masked(); // backslash
            while self.i < self.cs.len() && self.cs[self.i] != '\'' && self.cs[self.i] != '\n' {
                self.bump_masked();
            }
            if self.peek(0) == Some('\'') {
                self.bump_verbatim();
            }
            self.tokens.push(Token {
                kind: TokenKind::Char,
                line: start_line,
                text: String::new(),
            });
            return;
        }
        if self.peek(2) == Some('\'') {
            // One-char literal, including '{' and '}' (which would otherwise
            // corrupt brace counting in the test-module mask).
            self.bump_verbatim();
            self.bump_masked();
            self.bump_verbatim();
            self.tokens.push(Token {
                kind: TokenKind::Char,
                line: start_line,
                text: String::new(),
            });
            return;
        }
        // Lifetime.
        let mut text = String::from("'");
        self.bump_verbatim();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump_verbatim();
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Lifetime,
            line: start_line,
            text,
        });
    }

    /// At an identifier start. `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and
    /// `b'…'` are string/char prefixes, not identifiers.
    fn ident(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump_verbatim();
            } else {
                break;
            }
        }
        if matches!(text.as_str(), "r" | "b" | "br") {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..hashes {
                    self.bump_verbatim();
                }
                // `b"…"` takes escapes; `r`/`br` are raw.
                self.string(hashes, text != "b");
                return;
            }
            if text == "b" && self.peek(0) == Some('\'') {
                self.char_or_lifetime();
                return;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Ident,
            line: start_line,
            text,
        });
    }

    fn number(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump_verbatim();
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: TokenKind::Number,
            line: start_line,
            text,
        });
    }

    fn punct(&mut self) {
        let start_line = self.line;
        if let (c, Some(d)) = (self.cs[self.i], self.peek(1)) {
            let two: String = [c, d].iter().collect();
            if TWO_CHAR.contains(&two.as_str()) {
                self.bump_verbatim();
                self.bump_verbatim();
                self.tokens.push(Token {
                    kind: TokenKind::Punct,
                    line: start_line,
                    text: two,
                });
                return;
            }
        }
        let text = self.cs[self.i].to_string();
        self.bump_verbatim();
        self.tokens.push(Token {
            kind: TokenKind::Punct,
            line: start_line,
            text,
        });
    }
}

/// Lex `source` into its masked view and token stream.
pub fn scan(source: &str) -> Scan {
    let mut lx = Lexer {
        cs: source.chars().collect(),
        i: 0,
        line: 0,
        masked: String::with_capacity(source.len()),
        tokens: Vec::new(),
    };
    while lx.i < lx.cs.len() {
        let c = lx.cs[lx.i];
        if c == '/' && lx.peek(1) == Some('/') {
            lx.line_comment();
        } else if c == '/' && lx.peek(1) == Some('*') {
            lx.block_comment();
        } else if c == '"' {
            lx.string(0, false);
        } else if c == '\'' {
            lx.char_or_lifetime();
        } else if c.is_ascii_alphabetic() || c == '_' {
            lx.ident();
        } else if c.is_ascii_digit() {
            lx.number();
        } else if c.is_whitespace() {
            lx.bump_verbatim();
        } else {
            lx.punct();
        }
    }
    Scan {
        masked: lx.masked,
        tokens: lx.tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_masked_but_lines_survive() {
        let s = scan("let a = 1; // unwrap()\n/* panic!(\n) */ let b = 2;\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(!s.masked.contains("panic"));
        assert_eq!(s.masked.lines().count(), 3);
        assert_eq!(idents("x /* y */ z"), ["x", "z"]);
    }

    #[test]
    fn string_contents_are_masked_delimiters_kept() {
        let s = scan("let m = \"mac == other\"; let r = r#\"dbg!(x)\"#;");
        assert!(!s.masked.contains("mac"));
        assert!(!s.masked.contains("dbg"));
        assert!(s.masked.contains('"'));
        let toks = scan("f(\"a\\\"b\", 'c', b\"d\")").tokens;
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = scan("fn f<'a>(x: &'a str) -> char { 'a' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
    }

    #[test]
    fn two_char_operators_are_single_tokens() {
        let toks = scan("a == b != c :: d .. e").tokens;
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", ".."]);
    }

    #[test]
    fn tokens_carry_their_line() {
        let toks = scan("a\nb\n\nc").tokens;
        let lines: Vec<_> = toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(lines, [("a", 0), ("b", 1), ("c", 3)]);
    }
}
