//! Noise-protocol analytical model (Section 6.1.2).
//!
//! The aggregation phase has two steps. Step 1 spreads each group's
//! `(nf+1)·Nt/G` tuples over `n_NB` TDSs; step 2 merges the `n_NB` partials
//! of each group on one TDS:
//!
//! ```text
//! T_Q     = (n_NB + (nf+1)·Nt/(n_NB·G) + 2) · Tt      (optimal n_NB = √((nf+1)Nt/G))
//! P_TDS   = (n_NB + 1) · G
//! Load_Q  = ((nf+1)·Nt + 2·n_NB·G + G) · st
//! T_local = total TDS work / P_TDS
//! ```
//!
//! `C_Noise` is the same model with `nf = nd − 1` fakes per TDS, where `nd`
//! is the grouping-domain cardinality (we take `nd = G`: every group value
//! is a domain value).

use crate::optimum::noise_n_nb;
use crate::params::{waves, Metrics, ModelParams, ProtocolModel};

/// The noise-protocol model.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// `Some(nf)` for `Rnf_Noise`; `None` for `C_Noise` (nf = nd − 1 = G − 1).
    pub nf: Option<f64>,
}

impl NoiseModel {
    /// `R2_Noise`.
    pub fn r2() -> Self {
        Self { nf: Some(2.0) }
    }

    /// `R1000_Noise`.
    pub fn r1000() -> Self {
        Self { nf: Some(1000.0) }
    }

    /// `C_Noise`.
    pub fn controlled() -> Self {
        Self { nf: None }
    }

    /// Effective nf at a parameter point.
    pub fn effective_nf(&self, p: &ModelParams) -> f64 {
        self.nf.unwrap_or((p.g - 1.0).max(0.0))
    }
}

impl ProtocolModel for NoiseModel {
    fn name(&self) -> String {
        match self.nf {
            Some(nf) => format!("R{}_Noise", nf as u64),
            None => "C_Noise".into(),
        }
    }

    fn metrics(&self, p: &ModelParams) -> Metrics {
        let nf = self.effective_nf(p);
        let available = p.available_tds();
        let n_nb_opt = noise_n_nb(nf, p.nt, p.g);
        // Parallelism cap: (n_NB+1)·G TDSs wanted; shrink n_NB if the
        // connected population cannot host one TDS per (group, slice).
        let n_nb = n_nb_opt.min((available / p.g - 1.0).max(1.0));
        let ptds_wanted = (n_nb + 1.0) * p.g;
        let step1_per_tds = (nf + 1.0) * p.nt / (n_nb * p.g);
        let step2_per_tds = n_nb;
        let tq = (waves(n_nb * p.g, available) * (step1_per_tds + 1.0)
            + waves(p.g, available) * (step2_per_tds + 1.0))
            * p.tt;
        let ptds = ptds_wanted.min(available);
        let total_work_tuples = (nf + 1.0) * p.nt + 2.0 * n_nb * p.g + p.g;
        let load_bytes = total_work_tuples * p.st;
        let tlocal = total_work_tuples * p.tt / ptds.max(1.0);
        Metrics {
            ptds,
            load_bytes,
            tq,
            tlocal,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // tests sweep one field at a time
mod tests {
    use super::*;

    #[test]
    fn r1000_tq_matches_paper_scale() {
        let p = ModelParams::default();
        let m = NoiseModel::r1000().metrics(&p);
        // (n_NB + (nf+1)Nt/(n_NB·G) + 2)·Tt with n_NB ≈ 1000 → ≈ 0.032 s,
        // matching Fig. 10e's R1000_Noise at G = 10³.
        assert!(m.tq > 0.01 && m.tq < 0.2, "T_Q = {}", m.tq);
    }

    #[test]
    fn load_dominated_by_fakes() {
        let p = ModelParams::default();
        let r2 = NoiseModel::r2().metrics(&p);
        let r1000 = NoiseModel::r1000().metrics(&p);
        assert!(r1000.load_bytes > 100.0 * r2.load_bytes);
        // ≈ (nf+1)·Nt·st.
        assert!((r1000.load_bytes / (1001.0 * p.nt * p.st) - 1.0).abs() < 0.05);
    }

    #[test]
    fn c_noise_nf_tracks_domain() {
        let mut p = ModelParams::default();
        let c = NoiseModel::controlled();
        assert_eq!(c.effective_nf(&p), 999.0);
        p.g = 10.0;
        assert_eq!(c.effective_nf(&p), 9.0);
    }

    #[test]
    fn load_constant_in_g_for_rnf() {
        // Fig. 10c: noise-based Load_Q stays flat as G grows (nf depends
        // only on Nt).
        let mut p = ModelParams::default();
        let at_1e2 = {
            p.g = 1e2;
            NoiseModel::r1000().metrics(&p).load_bytes
        };
        let at_1e5 = {
            p.g = 1e5;
            NoiseModel::r1000().metrics(&p).load_bytes
        };
        assert!((at_1e2 - at_1e5).abs() / at_1e2 < 0.05);
    }

    #[test]
    fn tq_decreases_with_g() {
        // Fig. 10e: per-group parallelism makes T_Q fall as G rises.
        let mut p = ModelParams::default();
        p.g = 10.0;
        let small_g = NoiseModel::r2().metrics(&p).tq;
        p.g = 1e5;
        let large_g = NoiseModel::r2().metrics(&p).tq;
        assert!(large_g < small_g, "{large_g} vs {small_g}");
    }

    #[test]
    fn scarce_availability_slows_noise() {
        // Fig. 10i vs 10j.
        let mut p = ModelParams::default();
        p.availability = 0.01;
        let scarce = NoiseModel::r1000().metrics(&p).tq;
        p.availability = 1.0;
        let abundant = NoiseModel::r1000().metrics(&p).tq;
        assert!(scarce > abundant, "{scarce} vs {abundant}");
    }

    #[test]
    fn tlocal_grows_with_nt_under_bounded_availability() {
        // Fig. 10h: the fake-tuple load outpaces the bounded parallelism.
        let mut p = ModelParams::default();
        p.nt = 5e6;
        let small = NoiseModel::r1000().metrics(&p).tlocal;
        p.nt = 65e6;
        let large = NoiseModel::r1000().metrics(&p).tlocal;
        assert!(large >= small * 0.99, "{large} vs {small}");
    }
}
