//! The IC table itself — Fig. 7's "table of the inverse of the cardinalities
//! of the equivalence classes", one IC value per cell.

use crate::schemes::{column_ic, ColumnScheme};
use crate::table::PlainTable;

/// A full IC table: `values[row][col]` is the probability the attacker
/// assigns to correctly matching that cell's ciphertext to its plaintext.
#[derive(Debug, Clone, PartialEq)]
pub struct IcTable {
    /// Column names.
    pub columns: Vec<String>,
    /// IC values, row-major.
    pub values: Vec<Vec<f64>>,
}

impl IcTable {
    /// Compute the IC table for a plaintext table under per-column schemes.
    pub fn compute(table: &PlainTable, schemes: &[ColumnScheme]) -> Self {
        assert_eq!(table.n_cols(), schemes.len(), "one scheme per column");
        let per_column: Vec<Vec<f64>> = table
            .columns
            .iter()
            .zip(schemes.iter())
            .map(|(c, &s)| column_ic(c, s))
            .collect();
        let n = table.n_rows();
        let values = (0..n)
            .map(|i| per_column.iter().map(|col| col[i]).collect())
            .collect();
        Self {
            columns: table.columns.iter().map(|c| c.name.clone()).collect(),
            values,
        }
    }

    /// Per-row association-inference probability: the product of the row's
    /// IC values (the paper's `P(<Alice,200>) = P(α=Alice)·P(κ=200)`).
    pub fn row_products(&self) -> Vec<f64> {
        self.values.iter().map(|row| row.iter().product()).collect()
    }

    /// Render as an aligned text table (used by the `figures` harness).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.columns {
            let _ = write!(out, "{c:>10} ");
        }
        let _ = writeln!(out, "{:>12}", "P(assoc)");
        for (row, p) in self.values.iter().zip(self.row_products()) {
            for v in row {
                let _ = write!(out, "{v:>10.4} ");
            }
            let _ = writeln!(out, "{p:>12.6}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig7::accounts_table;

    #[test]
    fn det_ic_table_matches_fig7() {
        let table = accounts_table();
        let ic = IcTable::compute(&table, &[ColumnScheme::Det; 3]);
        assert_eq!(ic.columns, vec!["account", "customer", "balance"]);
        assert_eq!(ic.values.len(), 5);
        // Rows 0 & 1: Alice (unique max frequency) and 200 → customer and
        // balance cells are certain; account is a 5-way tie.
        assert_eq!(ic.values[0][1], 1.0);
        assert_eq!(ic.values[0][2], 1.0);
        assert!((ic.values[0][0] - 0.2).abs() < 1e-12);
        // Association probability of the ⟨Acc?, Alice, 200⟩ rows: 0.2·1·1.
        let p = ic.row_products();
        assert!((p[0] - 0.2).abs() < 1e-12);
        assert!((p[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ndet_table_is_flat() {
        let table = accounts_table();
        let ic = IcTable::compute(&table, &[ColumnScheme::NDet; 3]);
        // 5 accounts, 4 customers, 4 balances.
        for row in &ic.values {
            assert!((row[0] - 0.2).abs() < 1e-12);
            assert!((row[1] - 0.25).abs() < 1e-12);
            assert!((row[2] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let table = accounts_table();
        let ic = IcTable::compute(&table, &[ColumnScheme::Det; 3]);
        let text = ic.render();
        assert_eq!(text.lines().count(), 6, "header + 5 rows");
        assert!(text.contains("customer"));
        assert!(text.contains("P(assoc)"));
    }
}
