//! Minimal HKDF-style key derivation on HMAC-SHA256.
//!
//! `derive(secret, label, context)` = HMAC(HMAC(salt="tdsql-kdf-v1", secret),
//! label || 0x00 || context || 0x01). One output block (32 bytes) is enough
//! for every key in this system; there is no multi-block expand loop to get
//! subtly wrong.

use crate::hmac::HmacSha256;

/// Derive 32 bytes of key material, domain-separated by `label`/`context`.
pub fn derive(secret: &[u8], label: &str, context: &[u8]) -> [u8; 32] {
    // Extract.
    let prk = HmacSha256::mac(b"tdsql-kdf-v1", secret);
    // Expand (single block).
    let mut h = HmacSha256::new(&prk);
    h.update(label.as_bytes());
    h.update(&[0x00]);
    h.update(context);
    h.update(&[0x01]);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive(b"s", "l", b"c"), derive(b"s", "l", b"c"));
    }

    #[test]
    fn label_and_context_separate() {
        let base = derive(b"s", "l", b"c");
        assert_ne!(base, derive(b"s", "l2", b"c"));
        assert_ne!(base, derive(b"s", "l", b"c2"));
        assert_ne!(base, derive(b"s2", "l", b"c"));
    }

    #[test]
    fn no_length_extension_ambiguity() {
        // label="ab", context="c" must differ from label="a", context="bc";
        // the 0x00 separator guarantees it.
        assert_ne!(derive(b"s", "ab", b"c"), derive(b"s", "a", b"bc"));
    }
}
