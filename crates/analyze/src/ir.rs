//! The dataflow IR the checker runs on: a parsed [`Query`] plus
//! [`ProtocolParams`] lowered into the sequence of protocol stages, each
//! stage listing every field that crosses a trust boundary and the
//! [`Leakage`] label it crosses with.
//!
//! The lowering is deliberately *total*: it enumerates everything the SSI
//! could see under the chosen protocol, including the authorized cleartexts,
//! so the checker's job reduces to comparing labels against floors — there
//! is no separate "did we forget a field" pass.

use std::collections::BTreeSet;

use tdsql_core::leakage::TagForm;
use tdsql_core::plan::PhasePlan;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::stats::Phase;
use tdsql_sql::ast::{Expr, Query, SelectItem};

use crate::lattice::Leakage;

/// One stage of the protocol dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// TDSs evaluate locally and upload sealed tuples (steps 1–4).
    Collection,
    /// The SSI partitions the working set by tag (SSI-internal; what it
    /// learns here it learned from the tags it already stored).
    Partitioning,
    /// TDSs merge partial aggregates, possibly iteratively (steps 5–8).
    Aggregation,
    /// HAVING + projection, results re-sealed under `k1` (steps 9–13).
    Filtering,
}

impl StageKind {
    /// The runtime [`Phase`] whose SSI observations this stage produces.
    /// `Partitioning` produces none: it is computed server-side from tags
    /// recorded in earlier phases.
    pub fn phase(self) -> Option<Phase> {
        match self {
            StageKind::Collection => Some(Phase::Collection),
            StageKind::Partitioning => None,
            StageKind::Aggregation => Some(Phase::Aggregation),
            StageKind::Filtering => Some(Phase::Filtering),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Collection => "collection",
            StageKind::Partitioning => "partitioning",
            StageKind::Aggregation => "aggregation",
            StageKind::Filtering => "filtering",
        }
    }
}

/// What kind of value a flow carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldKind {
    /// A grouping attribute (`A_G`) — named by its column.
    Grouping(String),
    /// A non-grouping attribute referenced by the query — sensitive payload.
    Sensitive(String),
    /// An encoded partial-aggregate state.
    AggState,
    /// A final result row.
    ResultRow,
    /// The query's SQL text.
    QueryText,
    /// The SIZE clause bound.
    SizeBound,
    /// The authority-signed credential.
    Credential,
    /// The protocol recipe (which dataflow to run).
    ProtocolRecipe,
    /// Querybox routing (crowd vs listed TDS ids).
    Routing,
}

impl FieldKind {
    /// Display name used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            FieldKind::Grouping(c) => format!("grouping attribute `{c}`"),
            FieldKind::Sensitive(c) => format!("attribute `{c}`"),
            FieldKind::AggState => "partial aggregate state".into(),
            FieldKind::ResultRow => "result row".into(),
            FieldKind::QueryText => "query text".into(),
            FieldKind::SizeBound => "SIZE bound".into(),
            FieldKind::Credential => "credential".into(),
            FieldKind::ProtocolRecipe => "protocol recipe".into(),
            FieldKind::Routing => "querybox routing".into(),
        }
    }
}

/// Where a flow lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Visible to the untrusted SSI — the sink every invariant is about.
    SsiVisible,
    /// Stays inside the TDS trust perimeter (k2 secrets, local evaluation).
    TdsOnly,
    /// Delivered to the querier under `k1`.
    Querier,
}

/// One labelled edge of the dataflow: `field` reaches `sink` under `label`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// What the edge carries.
    pub field: FieldKind,
    /// Protection it carries it under.
    pub label: Leakage,
    /// Where it lands.
    pub sink: Sink,
}

/// One protocol stage with its flows and the tag form its stored tuples
/// carry (None for stages that ship no stored tuples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Which stage.
    pub kind: StageKind,
    /// The partitioning-tag form attached to tuples this stage hands the
    /// SSI, if it hands any.
    pub tag: Option<TagForm>,
    /// Every labelled boundary crossing of the stage.
    pub flows: Vec<Flow>,
}

/// The lowered plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Protocol the plan executes under.
    pub protocol: ProtocolKind,
    /// Aggregate (Group By framework) or Select-From-Where.
    pub aggregate: bool,
    /// Grouping attribute names (empty for SFW queries).
    pub grouping: Vec<String>,
    /// Non-grouping attributes the query touches.
    pub sensitive: Vec<String>,
    /// The stage sequence.
    pub stages: Vec<Stage>,
}

impl Plan {
    /// The stage of a given kind, if the plan has one.
    pub fn stage(&self, kind: StageKind) -> Option<&Stage> {
        self.stages.iter().find(|s| s.kind == kind)
    }
}

fn collect_columns(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Column(c) => {
            out.insert(c.column.clone());
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } => collect_columns(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Aggregate(call) => {
            if let Some(arg) = &call.arg {
                collect_columns(arg, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Like { expr, .. } => collect_columns(expr, out),
    }
}

/// The [`Leakage`] label a grouping attribute crosses to the SSI under when
/// its tuples carry a tag of the given form (the payload copy is always nDet
/// in addition). `TagForm::None` exposes nothing beyond the payload.
fn tag_label(form: TagForm) -> Option<Leakage> {
    match form {
        TagForm::None => None,
        TagForm::Det => Some(Leakage::DetEnc),
        TagForm::Bucket => Some(Leakage::KeyedHash),
    }
}

/// Lower a query + protocol choice into the dataflow plan.
///
/// The stage sequence and tag forms are read off the *compiled*
/// [`PhasePlan`] — the same object the runtimes interpret — so the analyzer
/// can never drift from what actually executes.
pub fn lower(query: &Query, params: &ProtocolParams) -> Plan {
    lower_plan(&PhasePlan::compile(query, params), query)
}

/// Lower an already-compiled [`PhasePlan`] (plus the query it was compiled
/// from, for attribute names) into the checker's dataflow IR.
pub fn lower_plan(phase_plan: &PhasePlan, query: &Query) -> Plan {
    let aggregate = phase_plan.aggregate;
    let mut grouping: BTreeSet<String> = BTreeSet::new();
    for g in &query.group_by {
        collect_columns(g, &mut grouping);
    }
    let mut touched: BTreeSet<String> = BTreeSet::new();
    for item in &query.select {
        if let SelectItem::Expr { expr, .. } = item {
            collect_columns(expr, &mut touched);
        }
    }
    if let Some(w) = &query.where_clause {
        collect_columns(w, &mut touched);
    }
    if let Some(h) = &query.having {
        collect_columns(h, &mut touched);
    }
    let sensitive: Vec<String> = touched.difference(&grouping).cloned().collect();
    let grouping: Vec<String> = grouping.into_iter().collect();

    let kind = phase_plan.kind;
    let mut stages = Vec::new();

    // Collection: the envelope's authorized cleartexts, the sealed query,
    // and one sealed tuple per local row (all attributes nDet; grouping
    // attributes additionally exposed through the tag the plan's collect
    // step attaches).
    let collect_form = phase_plan.collect.tag_policy.form();
    let (tag, label) = (Some(collect_form), tag_label(collect_form));
    let mut flows = vec![
        Flow {
            field: FieldKind::QueryText,
            label: Leakage::NDetEnc,
            sink: Sink::SsiVisible,
        },
        Flow {
            field: FieldKind::SizeBound,
            label: Leakage::Plaintext,
            sink: Sink::SsiVisible,
        },
        Flow {
            field: FieldKind::Credential,
            label: Leakage::Plaintext,
            sink: Sink::SsiVisible,
        },
        Flow {
            field: FieldKind::ProtocolRecipe,
            label: Leakage::Plaintext,
            sink: Sink::SsiVisible,
        },
        Flow {
            field: FieldKind::Routing,
            label: Leakage::Plaintext,
            sink: Sink::SsiVisible,
        },
    ];
    for col in &sensitive {
        flows.push(Flow {
            field: FieldKind::Sensitive(col.clone()),
            label: Leakage::NDetEnc,
            sink: Sink::SsiVisible,
        });
    }
    for col in &grouping {
        flows.push(Flow {
            field: FieldKind::Grouping(col.clone()),
            label: Leakage::NDetEnc,
            sink: Sink::SsiVisible,
        });
        if let Some(label) = label {
            flows.push(Flow {
                field: FieldKind::Grouping(col.clone()),
                label,
                sink: Sink::SsiVisible,
            });
        }
    }
    stages.push(Stage {
        kind: StageKind::Collection,
        tag,
        flows,
    });

    // Partitioning: server-side; re-reads the tags stored at collection.
    let mut flows = Vec::new();
    if let Some(label) = label {
        for col in &grouping {
            flows.push(Flow {
                field: FieldKind::Grouping(col.clone()),
                label,
                sink: Sink::SsiVisible,
            });
        }
    }
    stages.push(Stage {
        kind: StageKind::Partitioning,
        tag,
        flows,
    });

    // Aggregation: only plans with a reduce step run it (the Group By
    // framework); its tag form is whatever the reducers re-tag with.
    if aggregate && phase_plan.reduce.is_some() {
        let reduce_form = phase_plan
            .reduce
            .as_ref()
            .expect("checked above")
            .retag_form();
        let mut flows = vec![Flow {
            field: FieldKind::AggState,
            label: Leakage::NDetEnc,
            sink: Sink::SsiVisible,
        }];
        if let Some(label) = tag_label(reduce_form) {
            for col in &grouping {
                flows.push(Flow {
                    field: FieldKind::Grouping(col.clone()),
                    label,
                    sink: Sink::SsiVisible,
                });
            }
        }
        stages.push(Stage {
            kind: StageKind::Aggregation,
            tag: Some(reduce_form),
            flows,
        });
    }

    // Filtering: k1-sealed result rows, never tagged.
    stages.push(Stage {
        kind: StageKind::Filtering,
        tag: Some(TagForm::None),
        flows: vec![Flow {
            field: FieldKind::ResultRow,
            label: Leakage::NDetEnc,
            sink: Sink::Querier,
        }],
    });

    Plan {
        protocol: kind,
        aggregate,
        grouping,
        sensitive,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdsql_sql::parser::parse_query;

    fn agg_query() -> Query {
        parse_query(
            "SELECT c.district, AVG(p.cons) FROM power p, consumer c \
             WHERE c.cid = p.cid GROUP BY c.district SIZE 1000",
        )
        .unwrap()
    }

    #[test]
    fn lowering_separates_grouping_from_sensitive() {
        let plan = lower(
            &agg_query(),
            &ProtocolParams::new(ProtocolKind::EdHist { buckets: 4 }),
        );
        assert_eq!(plan.grouping, vec!["district"]);
        assert_eq!(plan.sensitive, vec!["cid", "cons"]);
        assert!(plan.aggregate);
    }

    #[test]
    fn ed_hist_switches_tag_form_between_steps() {
        let plan = lower(
            &agg_query(),
            &ProtocolParams::new(ProtocolKind::EdHist { buckets: 4 }),
        );
        assert_eq!(
            plan.stage(StageKind::Collection).unwrap().tag,
            Some(TagForm::Bucket)
        );
        assert_eq!(
            plan.stage(StageKind::Aggregation).unwrap().tag,
            Some(TagForm::Det)
        );
    }

    #[test]
    fn s_agg_tags_nothing() {
        let plan = lower(&agg_query(), &ProtocolParams::new(ProtocolKind::SAgg));
        for stage in &plan.stages {
            assert!(matches!(stage.tag, None | Some(TagForm::None)), "{stage:?}");
        }
        // No grouping attribute crosses at a label weaker than nDet.
        for stage in &plan.stages {
            for flow in &stage.flows {
                if matches!(flow.field, FieldKind::Grouping(_)) {
                    assert_eq!(flow.label, Leakage::NDetEnc);
                }
            }
        }
    }

    #[test]
    fn sfw_query_has_no_aggregation_stage() {
        let q = parse_query("SELECT pid FROM health WHERE age > 80").unwrap();
        let plan = lower(&q, &ProtocolParams::new(ProtocolKind::Basic));
        assert!(!plan.aggregate);
        assert!(plan.stage(StageKind::Aggregation).is_none());
        assert_eq!(plan.grouping, Vec::<String>::new());
        assert_eq!(plan.sensitive, vec!["age", "pid"]);
    }
}
