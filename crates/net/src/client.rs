//! Remote implementations of the service traits: [`RemoteSsi`] and
//! [`RemoteTdsPool`] speak the framed TCP wire protocol to `ssi-server`
//! and `tds-pool` processes.
//!
//! Failure model: every socket-level failure surfaces as a
//! [`transport_error`], which the [`ServiceDriver`] folds into the fault
//! taxonomy (reassignment for a failed step, lost upload for a failed
//! delivery). The connection layer itself retries exactly once with a
//! fresh connection — safe because the SSI's settle ledger makes
//! deliveries at-least-once with exactly-once settlement, so a request
//! that executed but whose response was lost settles as a
//! [`DeliveryOutcome::Duplicate`], never as double effect.
//!
//! [`ServiceDriver`]: tdsql_core::runtime::service::ServiceDriver
//! [`DeliveryOutcome::Duplicate`]: tdsql_core::message::DeliveryOutcome

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tdsql_core::bytes::Bytes;
use tdsql_core::error::{ProtocolError, Result};
use tdsql_core::message::{AssignmentId, DeliveryOutcome, QueryEnvelope, StoredTuple};
use tdsql_core::protocol::ProtocolParams;
use tdsql_core::service::{
    is_transport_error, transport_error, SsiService, StepResult, TdsPool, TdsStep,
};
use tdsql_core::stats::Phase;
use tdsql_obs::{Field, Obs};
use tdsql_sql::value::Value;

use crate::frame::{read_frame, write_frame, HEADER_LEN};
use crate::wire::{PoolRequest, PoolResponse, SsiRequest, SsiResponse};

/// A decoded response of the wrong shape for the request that was sent.
fn unexpected(what: &'static str) -> ProtocolError {
    ProtocolError::Codec(format!("unexpected wire response for {what}"))
}

/// Aggregate connection counters (frame-level accounting, headers
/// included). Snapshot via [`RemoteSsi::stats`] / [`RemoteTdsPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Completed request/response exchanges.
    pub calls: u64,
    /// Reconnections after a transport failure.
    pub reconnects: u64,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Bytes read from the socket.
    pub bytes_received: u64,
}

impl NetStats {
    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One lazily-connected, auto-reconnecting client connection with byte
/// accounting. All telemetry goes through the shared [`Obs`]; the
/// connection never logs request contents, only counters.
struct Conn {
    addr: String,
    peer: &'static str,
    stream: Mutex<Option<TcpStream>>,
    obs: Arc<Obs>,
    calls: AtomicU64,
    reconnects: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl Conn {
    fn new(addr: impl Into<String>, peer: &'static str, obs: Arc<Obs>) -> Self {
        Conn {
            addr: addr.into(),
            peer,
            stream: Mutex::new(None),
            obs,
            calls: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        }
    }

    /// One request/response exchange. On a transport failure the stale
    /// connection is dropped and the request is retried once on a fresh
    /// one; a second failure is reported to the caller (and from there to
    /// the driver's fault accounting).
    fn call(&self, request: &[u8]) -> Result<Vec<u8>> {
        let mut guard = self
            .stream
            .lock()
            .map_err(|_| transport_error("client connection lock poisoned"))?;
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut last_attempt = false;
        loop {
            if guard.is_none() {
                let stream = TcpStream::connect(&self.addr).map_err(transport_error)?;
                // Request/response framing: Nagle's algorithm only adds
                // latency here.
                stream.set_nodelay(true).map_err(transport_error)?;
                *guard = Some(stream);
            }
            let exchange = match guard.as_mut() {
                Some(stream) => write_frame(stream, request).and_then(|()| read_frame(stream)),
                None => Err(transport_error("connection vanished")),
            };
            match exchange {
                Ok(response) => {
                    self.bytes_sent
                        .fetch_add((request.len() + HEADER_LEN) as u64, Ordering::Relaxed);
                    self.bytes_received
                        .fetch_add((response.len() + HEADER_LEN) as u64, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(e) if is_transport_error(&e) && !last_attempt => {
                    // Stale or reset connection: reconnect and retry once.
                    *guard = None;
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.obs.event(
                        "net.client.reconnect",
                        None,
                        vec![Field::str("peer", self.peer)],
                    );
                    last_attempt = true;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn stats(&self) -> NetStats {
        NetStats {
            calls: self.calls.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Emit the connection's aggregate counters as one obs event.
    fn emit_stats(&self) {
        self.obs.event(
            "net.client.stats",
            None,
            vec![
                Field::str("peer", self.peer),
                Field::u64("calls", self.calls.load(Ordering::Relaxed)),
                Field::u64("reconnects", self.reconnects.load(Ordering::Relaxed)),
                Field::u64("bytes_sent", self.bytes_sent.load(Ordering::Relaxed)),
                Field::u64(
                    "bytes_received",
                    self.bytes_received.load(Ordering::Relaxed),
                ),
            ],
        );
    }
}

/// [`SsiService`] over the wire: each method is one framed request to an
/// `ssi-server` process.
pub struct RemoteSsi {
    conn: Conn,
}

impl RemoteSsi {
    /// Create a client for the SSI at `addr` (`host:port`). Connects
    /// lazily on the first call.
    pub fn connect(addr: impl Into<String>, obs: Arc<Obs>) -> Self {
        RemoteSsi {
            conn: Conn::new(addr, "ssi", obs),
        }
    }

    /// Emit the connection's aggregate byte/call counters to the obs log.
    pub fn emit_stats(&self) {
        self.conn.emit_stats();
    }

    /// Snapshot the connection counters.
    pub fn stats(&self) -> NetStats {
        self.conn.stats()
    }

    fn call(&self, req: &SsiRequest) -> Result<SsiResponse> {
        let wire = req.encode()?;
        let response = self.conn.call(&wire)?;
        match SsiResponse::decode(&response)? {
            SsiResponse::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

impl SsiService for RemoteSsi {
    fn post_query(&self, envelope: QueryEnvelope) -> Result<u64> {
        match self.call(&SsiRequest::PostQuery(envelope))? {
            SsiResponse::Id(id) => Ok(id),
            _ => Err(unexpected("post_query")),
        }
    }

    fn envelope(&self, query_id: u64) -> Result<QueryEnvelope> {
        match self.call(&SsiRequest::Envelope(query_id))? {
            SsiResponse::Envelope(e) => Ok(e),
            _ => Err(unexpected("envelope")),
        }
    }

    fn new_item(&self, query_id: u64) -> Result<u64> {
        match self.call(&SsiRequest::NewItem(query_id))? {
            SsiResponse::Id(id) => Ok(id),
            _ => Err(unexpected("new_item")),
        }
    }

    fn begin_assignment(&self, query_id: u64, item: u64) -> Result<AssignmentId> {
        match self.call(&SsiRequest::BeginAssignment(query_id, item))? {
            SsiResponse::Id(id) => Ok(AssignmentId(id)),
            _ => Err(unexpected("begin_assignment")),
        }
    }

    fn item_done(&self, query_id: u64, item: u64) -> Result<bool> {
        match self.call(&SsiRequest::ItemDone(query_id, item))? {
            SsiResponse::Flag(b) => Ok(b),
            _ => Err(unexpected("item_done")),
        }
    }

    fn receive_collection(
        &self,
        query_id: u64,
        assignment: AssignmentId,
        tuples: Vec<StoredTuple>,
    ) -> Result<DeliveryOutcome> {
        match self.call(&SsiRequest::ReceiveCollection {
            query_id,
            assignment,
            tuples,
        })? {
            SsiResponse::Outcome(o) => Ok(o),
            _ => Err(unexpected("receive_collection")),
        }
    }

    fn collection_count(&self, query_id: u64) -> Result<usize> {
        match self.call(&SsiRequest::CollectionCount(query_id))? {
            SsiResponse::Count(n) => usize::try_from(n).map_err(|_| unexpected("collection_count")),
            _ => Err(unexpected("collection_count")),
        }
    }

    fn size_tuples_reached(&self, query_id: u64) -> Result<bool> {
        match self.call(&SsiRequest::SizeTuplesReached(query_id))? {
            SsiResponse::Flag(b) => Ok(b),
            _ => Err(unexpected("size_tuples_reached")),
        }
    }

    fn close_collection(&self, query_id: u64) -> Result<()> {
        match self.call(&SsiRequest::CloseCollection(query_id))? {
            SsiResponse::Unit => Ok(()),
            _ => Err(unexpected("close_collection")),
        }
    }

    fn take_working(&self, query_id: u64) -> Result<Vec<StoredTuple>> {
        match self.call(&SsiRequest::TakeWorking(query_id))? {
            SsiResponse::Tuples(ts) => Ok(ts),
            _ => Err(unexpected("take_working")),
        }
    }

    fn restore_working(&self, query_id: u64, phase: Phase, tuples: Vec<StoredTuple>) -> Result<()> {
        match self.call(&SsiRequest::RestoreWorking {
            query_id,
            phase,
            tuples,
        })? {
            SsiResponse::Unit => Ok(()),
            _ => Err(unexpected("restore_working")),
        }
    }

    fn receive_working(
        &self,
        query_id: u64,
        assignment: AssignmentId,
        phase: Phase,
        tuples: Vec<StoredTuple>,
    ) -> Result<DeliveryOutcome> {
        match self.call(&SsiRequest::ReceiveWorking {
            query_id,
            assignment,
            phase,
            tuples,
        })? {
            SsiResponse::Outcome(o) => Ok(o),
            _ => Err(unexpected("receive_working")),
        }
    }

    fn receive_results(
        &self,
        query_id: u64,
        assignment: AssignmentId,
        rows: Vec<Bytes>,
    ) -> Result<DeliveryOutcome> {
        match self.call(&SsiRequest::ReceiveResults {
            query_id,
            assignment,
            rows,
        })? {
            SsiResponse::Outcome(o) => Ok(o),
            _ => Err(unexpected("receive_results")),
        }
    }

    fn results(&self, query_id: u64) -> Result<Vec<Bytes>> {
        match self.call(&SsiRequest::Results(query_id))? {
            SsiResponse::Blobs(bs) => Ok(bs),
            _ => Err(unexpected("results")),
        }
    }

    fn purge_query(&self, query_id: u64) -> Result<()> {
        match self.call(&SsiRequest::PurgeQuery(query_id))? {
            SsiResponse::Unit => Ok(()),
            _ => Err(unexpected("purge_query")),
        }
    }
}

/// [`TdsPool`] over the wire: each step is one framed request to a
/// `tds-pool` process hosting the population.
pub struct RemoteTdsPool {
    conn: Conn,
    ids: Vec<u64>,
}

impl RemoteTdsPool {
    /// Connect to the pool at `addr` and fetch the population roster. The
    /// roster is immutable for the life of a deployment, so it is cached
    /// client-side; steps and row-openings go over the wire.
    pub fn connect(addr: impl Into<String>, obs: Arc<Obs>) -> Result<Self> {
        let conn = Conn::new(addr, "tds-pool", obs);
        let pool = RemoteTdsPool {
            conn,
            ids: Vec::new(),
        };
        let ids = match pool.call(&PoolRequest::TdsIds)? {
            PoolResponse::Ids(ids) => ids,
            _ => return Err(unexpected("tds_ids")),
        };
        Ok(RemoteTdsPool { ids, ..pool })
    }

    /// Emit the connection's aggregate byte/call counters to the obs log.
    pub fn emit_stats(&self) {
        self.conn.emit_stats();
    }

    /// Snapshot the connection counters.
    pub fn stats(&self) -> NetStats {
        self.conn.stats()
    }

    fn call(&self, req: &PoolRequest) -> Result<PoolResponse> {
        let wire = req.encode()?;
        let response = self.conn.call(&wire)?;
        match PoolResponse::decode(&response)? {
            PoolResponse::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

impl TdsPool for RemoteTdsPool {
    fn len(&self) -> Result<usize> {
        Ok(self.ids.len())
    }

    fn tds_ids(&self) -> Result<Vec<u64>> {
        Ok(self.ids.clone())
    }

    fn step(
        &self,
        index: usize,
        env: &QueryEnvelope,
        params: &ProtocolParams,
        now_round: u64,
        step: TdsStep,
        partition: &[StoredTuple],
        rng_seed: u64,
    ) -> Result<StepResult> {
        let index = u32::try_from(index).map_err(|_| ProtocolError::LengthOverflow {
            what: "wire pool index",
            len: index,
            max: u32::MAX as usize,
        })?;
        match self.call(&PoolRequest::Step {
            index,
            env: env.clone(),
            params: params.clone(),
            now_round,
            step,
            partition: partition.to_vec(),
            rng_seed,
        })? {
            PoolResponse::Working(ts) => Ok(StepResult::Working(ts)),
            PoolResponse::Results(bs) => Ok(StepResult::Results(bs)),
            _ => Err(unexpected("step")),
        }
    }

    fn open_rows(&self, blobs: &[Bytes]) -> Result<Vec<Vec<Value>>> {
        match self.call(&PoolRequest::OpenRows(blobs.to_vec()))? {
            PoolResponse::Rows(rows) => Ok(rows),
            _ => Err(unexpected("open_rows")),
        }
    }
}
