//! Partitioning strategies used by the SSI.
//!
//! The SSI never decrypts anything, so partitioning can only use what a
//! ciphertext shows on the outside: its position (random partitioning, used
//! by S_Agg and the basic protocol) or its [`GroupTag`] (noise-based and
//! histogram protocols, where tuples with equal tags are guaranteed to be
//! grouped together).

use std::collections::BTreeMap;

use tdsql_crypto::rng::seq::SliceRandom;
use tdsql_crypto::rng::Rng;

use crate::message::{GroupTag, StoredTuple};

/// Shuffle and split into chunks of at most `chunk_size` tuples.
pub fn random_partitions<R: Rng>(
    mut items: Vec<StoredTuple>,
    chunk_size: usize,
    rng: &mut R,
) -> Vec<Vec<StoredTuple>> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    items.shuffle(rng);
    let mut out = Vec::with_capacity(items.len().div_ceil(chunk_size));
    let mut current = Vec::with_capacity(chunk_size.min(items.len()));
    for t in items {
        current.push(t);
        if current.len() == chunk_size {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Group by tag, then split each tag group into chunks of at most
/// `chunk_size`. Tuples with the same tag land in partitions dedicated to
/// that tag, enabling per-group parallelism.
pub fn tag_partitions(
    items: Vec<StoredTuple>,
    chunk_size: usize,
) -> Vec<(GroupTag, Vec<StoredTuple>)> {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut by_tag: BTreeMap<GroupTag, Vec<StoredTuple>> = BTreeMap::new();
    for t in items {
        by_tag.entry(t.tag.clone()).or_default().push(t);
    }
    let mut out = Vec::new();
    for (tag, tuples) in by_tag {
        let mut current = Vec::with_capacity(chunk_size.min(tuples.len()));
        for t in tuples {
            current.push(t);
            if current.len() == chunk_size {
                out.push((tag.clone(), std::mem::take(&mut current)));
            }
        }
        if !current.is_empty() {
            out.push((tag.clone(), current));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use tdsql_crypto::rng::SeedableRng;
    use tdsql_crypto::rng::StdRng;

    fn tuple(tag: GroupTag, byte: u8) -> StoredTuple {
        StoredTuple {
            tag,
            blob: Bytes::copy_from_slice(&[byte]),
        }
    }

    #[test]
    fn random_partitions_preserve_items() {
        let mut rng = StdRng::seed_from_u64(7);
        let items: Vec<_> = (0..10u8).map(|i| tuple(GroupTag::None, i)).collect();
        let parts = random_partitions(items.clone(), 3, &mut rng);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().take(3).all(|p| p.len() == 3));
        assert_eq!(parts[3].len(), 1);
        let mut all: Vec<u8> = parts.iter().flatten().map(|t| t.blob[0]).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10u8).collect::<Vec<_>>());
    }

    #[test]
    fn random_partitions_shuffle() {
        let mut rng = StdRng::seed_from_u64(8);
        let items: Vec<_> = (0..100u8).map(|i| tuple(GroupTag::None, i)).collect();
        let parts = random_partitions(items, 100, &mut rng);
        let order: Vec<u8> = parts[0].iter().map(|t| t.blob[0]).collect();
        assert_ne!(
            order,
            (0..100u8).collect::<Vec<_>>(),
            "must not keep arrival order"
        );
    }

    #[test]
    fn tag_partitions_group_and_chunk() {
        let items = vec![
            tuple(GroupTag::Det(crate::bytes::Bytes::from(vec![1])), 1),
            tuple(GroupTag::Det(crate::bytes::Bytes::from(vec![2])), 2),
            tuple(GroupTag::Det(crate::bytes::Bytes::from(vec![1])), 3),
            tuple(GroupTag::Det(crate::bytes::Bytes::from(vec![1])), 4),
        ];
        let parts = tag_partitions(items, 2);
        // Tag [1] has 3 tuples → 2 partitions; tag [2] has 1 → 1 partition.
        assert_eq!(parts.len(), 3);
        for (tag, tuples) in &parts {
            assert!(tuples.iter().all(|t| t.tag == *tag));
        }
        let tag1_total: usize = parts
            .iter()
            .filter(|(t, _)| *t == GroupTag::Det(crate::bytes::Bytes::from(vec![1])))
            .map(|(_, v)| v.len())
            .sum();
        assert_eq!(tag1_total, 3);
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(random_partitions(Vec::new(), 4, &mut rng).is_empty());
        assert!(tag_partitions(Vec::new(), 4).is_empty());
    }
}
