//! Pass 3 — the settle model checker.
//!
//! The chaos suite samples delivery/reassign/close interleavings with seeded
//! sweeps; this pass *enumerates* them. It runs a bounded, memoized DFS over
//! the settle-ledger state machine that `tdsql_core::ssi` exports as data —
//! [`SETTLE_TRANSITIONS`] for the per-assignment settle core and
//! [`WINDOW_GUARDS`] for the phase/window short-circuits — and proves, for
//! every interleaving within the bound:
//!
//! * **exactly-one-`Accepted` per work item**: a second merge for an item
//!   (the double-count class, e.g. a `LateAfterReassign` that merges) is a
//!   violation with a full delivery trace;
//! * **accept completes the item**: a terminal state where an item's accept
//!   count and done flag disagree is a violation;
//! * **the `reachable: false` rows are really unreachable**: the table
//!   documents `(Settled, Pending)` as impossible; the checker confirms no
//!   interleaving reaches it (and reports which reachable rows the bound
//!   exercised, so a bound too small to mean anything is visible).
//!
//! The checker takes the tables as parameters: the negative tests hand it a
//! deliberately mutated table (a double-accepting ledger) and get a precise
//! counterexample naming the offending transition.
//!
//! [`SETTLE_TRANSITIONS`]: tdsql_core::ssi::SETTLE_TRANSITIONS
//! [`WINDOW_GUARDS`]: tdsql_core::ssi::WINDOW_GUARDS

use std::collections::BTreeSet;

use tdsql_core::ssi::{
    GuardAction, ItemState, PhaseClass, SettleTransition, SettleVerdict, SlotState, WindowGuard,
    WindowState, SETTLE_TRANSITIONS, WINDOW_GUARDS,
};

/// Exploration bounds. Defaults cover the interesting interactions —
/// duplicate deliveries, reassignment races, late arrivals, window-close
/// races and forged assignment ids — while keeping the state space tiny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Work items tracked.
    pub items: usize,
    /// Assignments issued per item (reassignment depth).
    pub assignments_per_item: usize,
    /// Deliveries attempted per assignment (duplicate depth).
    pub deliveries_per_assignment: usize,
    /// Explore the collection-window close event and both phase classes.
    pub with_close: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            items: 2,
            assignments_per_item: 2,
            deliveries_per_assignment: 2,
            with_close: true,
        }
    }
}

/// A violating interleaving: the event trace from the initial state and
/// what broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Events in order, each rendered as one stable line.
    pub trace: Vec<String>,
    /// The violated invariant, naming the offending transition.
    pub violation: String,
}

/// The pass result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettleReport {
    /// The bounds explored.
    pub config: ModelConfig,
    /// Distinct states visited.
    pub states: usize,
    /// Settle-core pre-states the exploration exercised.
    pub covered: Vec<(SlotState, ItemState)>,
    /// No `reachable: false` row was ever hit.
    pub unreachable_confirmed: bool,
    /// The first violation found, if any.
    pub violation: Option<Counterexample>,
}

impl SettleReport {
    /// Did the exploration prove exactly-once settlement?
    pub fn proven(&self) -> bool {
        self.violation.is_none() && self.unreachable_confirmed
    }
}

/// One assignment's coordinates in the model.
#[derive(Debug, Clone, Copy)]
struct Assignment {
    /// The item the assignment works on.
    item: usize,
    /// Forged ids stay `Unissued` forever; issued ones start `Issued`.
    forged: bool,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    window: WindowState,
    slots: Vec<SlotState>,
    done: Vec<bool>,
    accepted: Vec<u8>,
    budget: Vec<u8>,
}

struct Explorer<'a> {
    cfg: ModelConfig,
    assignments: Vec<Assignment>,
    transitions: &'a [SettleTransition],
    guards: &'a [WindowGuard],
    visited: std::collections::HashSet<State>,
    covered: BTreeSet<(SlotState, ItemState)>,
    hit_unreachable: Option<(SlotState, ItemState)>,
    violation: Option<Counterexample>,
}

impl<'a> Explorer<'a> {
    fn guard(&self, class: PhaseClass, window: WindowState) -> Option<&'a WindowGuard> {
        self.guards
            .iter()
            .find(|g| g.class == class && g.window == window)
    }

    fn transition(&self, slot: SlotState, item: ItemState) -> Option<&'a SettleTransition> {
        self.transitions
            .iter()
            .find(|t| t.slot == slot && t.item == item)
    }

    fn fail(&mut self, trace: &[String], violation: String) {
        if self.violation.is_none() {
            self.violation = Some(Counterexample {
                trace: trace.to_vec(),
                violation,
            });
        }
    }

    fn dfs(&mut self, state: State, trace: &mut Vec<String>) {
        if self.violation.is_some() || self.visited.contains(&state) {
            return;
        }
        self.visited.insert(state.clone());

        let mut any_event = false;

        // Close the collection window (once).
        if self.cfg.with_close && state.window == WindowState::Open {
            any_event = true;
            let mut next = state.clone();
            next.window = WindowState::Closed;
            trace.push("close collection window".into());
            self.dfs(next, trace);
            trace.pop();
        }

        // Deliver any assignment with budget left, under either phase class.
        let classes: &[PhaseClass] = if self.cfg.with_close {
            &[PhaseClass::Collection, PhaseClass::PostCollection]
        } else {
            &[PhaseClass::Collection]
        };
        let assignments = self.assignments.clone();
        for (a, assignment) in assignments.into_iter().enumerate() {
            if state.budget[a] == 0 {
                continue;
            }
            for class in classes.iter().copied() {
                any_event = true;
                self.deliver(&state, a, assignment, class, trace);
                if self.violation.is_some() {
                    return;
                }
            }
        }

        if !any_event || state.budget.iter().all(|&b| b == 0) {
            self.check_terminal(&state, trace);
        }
    }

    fn deliver(
        &mut self,
        state: &State,
        a: usize,
        assignment: Assignment,
        class: PhaseClass,
        trace: &mut Vec<String>,
    ) {
        let mut next = state.clone();
        next.budget[a] -= 1;

        let Some(guard) = self.guard(class, state.window) else {
            self.fail(
                trace,
                format!("no window guard for ({class:?}, {:?})", state.window),
            );
            return;
        };
        let label = |verdict: SettleVerdict| {
            format!(
                "deliver a{a} (item {}, {class:?}/{:?}) -> {verdict:?}",
                assignment.item, state.window
            )
        };
        match guard.action {
            GuardAction::Stop(verdict) => {
                trace.push(label(verdict));
                self.dfs(next, trace);
                trace.pop();
            }
            GuardAction::Proceed => {
                let slot = state.slots[a];
                let item_state = if state.done[assignment.item] {
                    ItemState::Done
                } else {
                    ItemState::Pending
                };
                self.covered.insert((slot, item_state));
                let Some(t) = self.transition(slot, item_state) else {
                    self.fail(
                        trace,
                        format!("no settle transition for ({slot:?}, {item_state:?})"),
                    );
                    return;
                };
                if !t.reachable && self.hit_unreachable.is_none() {
                    self.hit_unreachable = Some((slot, item_state));
                }
                next.slots[a] = t.slot_after;
                next.done[assignment.item] = t.item_after == ItemState::Done;
                if t.merges {
                    next.accepted[assignment.item] += 1;
                }
                trace.push(label(t.verdict));
                if t.merges && t.verdict != SettleVerdict::Accepted {
                    self.fail(
                        trace,
                        format!(
                            "transition ({slot:?}, {item_state:?}) -> {:?} merges its \
                             delivery: a non-accepted outcome must never be merged \
                             (double-count)",
                            t.verdict
                        ),
                    );
                    trace.pop();
                    return;
                }
                if next.accepted[assignment.item] > 1 {
                    self.fail(
                        trace,
                        format!(
                            "item {} accepted twice: transition ({slot:?}, \
                             {item_state:?}) -> {:?} merged a second contribution",
                            assignment.item, t.verdict
                        ),
                    );
                    trace.pop();
                    return;
                }
                self.dfs(next, trace);
                trace.pop();
            }
        }
    }

    fn check_terminal(&mut self, state: &State, trace: &[String]) {
        for item in 0..self.cfg.items {
            let accepted = state.accepted[item];
            if (accepted == 1) != state.done[item] {
                self.fail(
                    trace,
                    format!(
                        "terminal state inconsistent for item {item}: accepted={accepted} \
                         but done={}",
                        state.done[item]
                    ),
                );
                return;
            }
        }
    }
}

/// Model-check arbitrary tables (the negative tests pass mutated copies).
pub fn check_tables(
    cfg: &ModelConfig,
    transitions: &[SettleTransition],
    guards: &[WindowGuard],
) -> SettleReport {
    // items × assignments_per_item issued assignments, plus one forged id
    // (never issued by the SSI) to exercise the Unissued rows.
    let mut assignments: Vec<Assignment> = Vec::new();
    for item in 0..cfg.items {
        for _ in 0..cfg.assignments_per_item {
            assignments.push(Assignment {
                item,
                forged: false,
            });
        }
    }
    assignments.push(Assignment {
        item: 0,
        forged: true,
    });

    let initial = State {
        window: WindowState::Open,
        slots: assignments
            .iter()
            .map(|a| {
                if a.forged {
                    SlotState::Unissued
                } else {
                    SlotState::Issued
                }
            })
            .collect(),
        done: vec![false; cfg.items],
        accepted: vec![0; cfg.items],
        budget: vec![
            u8::try_from(cfg.deliveries_per_assignment).unwrap_or(u8::MAX);
            assignments.len()
        ],
    };

    let mut explorer = Explorer {
        cfg: *cfg,
        assignments,
        transitions,
        guards,
        visited: std::collections::HashSet::new(),
        covered: BTreeSet::new(),
        hit_unreachable: None,
        violation: None,
    };
    let mut trace = Vec::new();
    explorer.dfs(initial, &mut trace);

    SettleReport {
        config: *cfg,
        states: explorer.visited.len(),
        covered: explorer.covered.into_iter().collect(),
        unreachable_confirmed: explorer.hit_unreachable.is_none(),
        violation: explorer.violation,
    }
}

/// Model-check the ledger the runtime actually executes.
pub fn check_ledger(cfg: &ModelConfig) -> SettleReport {
    check_tables(cfg, SETTLE_TRANSITIONS, WINDOW_GUARDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_real_ledger_proves_exactly_once() {
        let report = check_ledger(&ModelConfig::default());
        assert!(report.proven(), "{:?}", report.violation);
        assert!(report.states > 100, "bound too small: {}", report.states);
        // Every reachable settle-core row was exercised within the bound.
        let reachable: Vec<(SlotState, ItemState)> = SETTLE_TRANSITIONS
            .iter()
            .filter(|t| t.reachable)
            .map(|t| (t.slot, t.item))
            .collect();
        for row in reachable {
            assert!(report.covered.contains(&row), "uncovered row {row:?}");
        }
        // And the documented-unreachable row stayed unreachable.
        assert!(report.unreachable_confirmed);
    }

    #[test]
    fn a_merging_late_delivery_is_caught_with_a_trace() {
        // Mutate the ledger so LateAfterReassign merges: the classic
        // double-count bug the dedup exists to prevent.
        let mut transitions: Vec<SettleTransition> = SETTLE_TRANSITIONS.to_vec();
        for t in &mut transitions {
            if t.verdict == SettleVerdict::LateAfterReassign {
                t.merges = true;
            }
        }
        let report = check_tables(&ModelConfig::default(), &transitions, WINDOW_GUARDS);
        assert!(!report.proven());
        let cx = report.violation.unwrap();
        assert!(
            cx.violation.contains("LateAfterReassign"),
            "{}",
            cx.violation
        );
        assert!(!cx.trace.is_empty());
    }

    #[test]
    fn a_ledger_that_accepts_late_reassigned_deliveries_double_accepts() {
        // Mutate the ledger so a delivery for an already-done item under a
        // *different* (still-issued) assignment is accepted and merged —
        // the reassignment-race double-accept.
        let mut transitions: Vec<SettleTransition> = SETTLE_TRANSITIONS.to_vec();
        for t in &mut transitions {
            if t.slot == SlotState::Issued && t.item == ItemState::Done {
                t.verdict = SettleVerdict::Accepted;
                t.merges = true;
            }
        }
        let report = check_tables(&ModelConfig::default(), &transitions, WINDOW_GUARDS);
        assert!(!report.proven());
        let cx = report.violation.unwrap();
        assert!(cx.violation.contains("accepted twice"), "{}", cx.violation);
        assert!(cx.violation.contains("(Issued, Done)"), "{}", cx.violation);
    }

    #[test]
    fn the_window_guard_is_policy_exactly_once_rests_on_the_core() {
        // Remove the closed-window stop: late collection deliveries now
        // reach the settle core. Exactly-once still holds — dedup is the
        // core's job, the guard only enforces the SIZE window policy. This
        // pins the separation of concerns the two tables encode.
        let mut guards: Vec<WindowGuard> = WINDOW_GUARDS.to_vec();
        for g in &mut guards {
            if g.class == PhaseClass::Collection && g.window == WindowState::Closed {
                g.action = GuardAction::Proceed;
            }
        }
        let report = check_tables(&ModelConfig::default(), SETTLE_TRANSITIONS, &guards);
        assert!(report.proven(), "{:?}", report.violation);
    }
}
