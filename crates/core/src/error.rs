//! Protocol error type.

use tdsql_crypto::CryptoError;
use tdsql_sql::SqlError;

use crate::stats::Phase;

/// Errors surfaced while running a distributed querying protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// Cryptographic failure (tampering, wrong key, truncation).
    Crypto(CryptoError),
    /// SQL failure (parse, type, evaluation).
    Sql(SqlError),
    /// Wire payload could not be decoded.
    Codec(String),
    /// A protocol invariant was violated (bug or misbehaving participant).
    Protocol(String),
    /// No TDS ever connected to make progress.
    NoProgress {
        /// The phase that starved.
        phase: &'static str,
    },
    /// The query was rejected by access control on every contacted TDS.
    /// (The querier only observes dummy results; this error is produced by
    /// the *querier* when the final result contains nothing but dummies and
    /// the caller asked for strict reporting.)
    AccessDenied,
    /// The requested protocol cannot run this query (e.g. S_Agg on a
    /// non-aggregate query).
    Unsupported(String),
    /// An encoded payload exceeds the query's pad length. Sending it
    /// unpadded would make it distinguishable by size, so encoding refuses.
    PadTooSmall {
        /// Bytes the payload actually needs.
        needed: usize,
        /// The configured pad length it must fit in.
        pad: usize,
    },
    /// An encoded collection's length exceeds its wire-format counter width.
    /// Encoding refuses instead of truncating the count silently (a wrapped
    /// `as u16`/`as u32` cast would produce a decodable-but-wrong payload).
    LengthOverflow {
        /// Which counter overflowed (e.g. "PlainTuple values").
        what: &'static str,
        /// The actual length.
        len: usize,
        /// The maximum the wire format can carry.
        max: usize,
    },
    /// A work item exhausted its retry budget: the query terminates loudly
    /// instead of re-sending the partition forever. (SIZE-bounded queries
    /// degrade to a partial result instead of raising this.)
    QueryAborted {
        /// Phase whose work item could not be completed.
        phase: Phase,
        /// Delivery attempts consumed before giving up.
        retries: u32,
    },
    /// A delivery (or state query) addressed a query id with no live
    /// server-side state — never posted, or already purged.
    UnknownQuery {
        /// The unknown query id.
        query_id: u64,
    },
    /// A delivery that violates the query's lifecycle on the SSI (e.g.
    /// aggregation output while the collection window is still open, or a
    /// delivery under an assignment the SSI never issued).
    InvalidTransition {
        /// Query whose lifecycle was violated.
        query_id: u64,
        /// What went wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Crypto(e) => write!(f, "crypto: {e}"),
            ProtocolError::Sql(e) => write!(f, "sql: {e}"),
            ProtocolError::Codec(m) => write!(f, "codec: {m}"),
            ProtocolError::Protocol(m) => write!(f, "protocol: {m}"),
            ProtocolError::NoProgress { phase } => {
                write!(f, "no connected TDS made progress during {phase}")
            }
            ProtocolError::AccessDenied => write!(f, "access denied by all contacted TDSs"),
            ProtocolError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ProtocolError::PadTooSmall { needed, pad } => write!(
                f,
                "payload needs {needed} bytes but pad is {pad}: raise `pad` to keep sizes uniform"
            ),
            ProtocolError::LengthOverflow { what, len, max } => write!(
                f,
                "{what} has {len} elements but the wire counter carries at most {max}: \
                 refusing to truncate"
            ),
            ProtocolError::QueryAborted { phase, retries } => write!(
                f,
                "query aborted: a {phase}-phase work item exhausted its retry budget \
                 after {retries} delivery attempts"
            ),
            ProtocolError::UnknownQuery { query_id } => {
                write!(
                    f,
                    "no live state for query {query_id} (never posted or purged)"
                )
            }
            ProtocolError::InvalidTransition { query_id, what } => {
                write!(
                    f,
                    "invalid lifecycle transition for query {query_id}: {what}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<SqlError> for ProtocolError {
    fn from(e: SqlError) -> Self {
        ProtocolError::Sql(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ProtocolError>;
