//! Concurrent runtime: every TDS works on its own thread.
//!
//! The round-based runtime is deterministic but sequential. This runtime
//! executes the same protocol dataflows with real parallelism: TDS workers
//! pull partitions from a shared work queue and the shared state sits behind
//! mutexes — the "parallel feed" of Fig. 4 made literal. All
//! four protocols are supported; results are bit-identical to the round
//! runtime's up to float merge order (tested in `tests/threaded_runtime.rs`).

use std::sync::Mutex;

use tdsql_crypto::rng::{SeedableRng, StdRng};

use crate::bytes::Bytes;

use tdsql_sql::ast::Query;
use tdsql_sql::value::Value;

use crate::error::{ProtocolError, Result};
use crate::message::{GroupTag, StoredTuple};
use crate::partition::{random_partitions, tag_partitions};
use crate::protocol::{ProtocolKind, ProtocolParams};
use crate::querier::Querier;
use crate::tds::{ResultDest, RetagMode, Tds};

/// One worker step's output.
enum Out {
    Working(Vec<StoredTuple>),
    Results(Vec<Bytes>),
}

/// Lock a mutex, recovering the data on poison: a panicking worker thread
/// must not turn into a second panic on the coordinating thread (the first
/// error is already captured via `first_err`).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A shared pull-queue of partitions (the crossbeam channel of the original
/// design, expressed with std primitives for the hermetic build).
struct WorkQueue {
    items: Mutex<std::collections::VecDeque<Vec<StoredTuple>>>,
}

impl WorkQueue {
    fn new(partitions: Vec<Vec<StoredTuple>>) -> Self {
        Self {
            items: Mutex::new(partitions.into()),
        }
    }

    fn pop(&self) -> Option<Vec<StoredTuple>> {
        lock(&self.items).pop_front()
    }
}

/// Fan a set of partitions out to `n_workers` threads; each partition is
/// processed by some TDS via `work`. Returns the concatenated outputs.
fn parallel_partitions<F>(
    tdss: &[Tds],
    n_workers: usize,
    seed: u64,
    partitions: Vec<Vec<StoredTuple>>,
    work: F,
) -> Result<(Vec<StoredTuple>, Vec<Bytes>)>
where
    F: Fn(&Tds, &[StoredTuple], &mut StdRng) -> Result<Out> + Sync,
{
    let queue = WorkQueue::new(partitions);

    let working: Mutex<Vec<StoredTuple>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<Bytes>> = Mutex::new(Vec::new());
    let first_err: Mutex<Option<ProtocolError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..n_workers {
            let queue = &queue;
            let working = &working;
            let results = &results;
            let first_err = &first_err;
            let work = &work;
            let tds = &tdss[w % tdss.len()];
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9e3779b9));
                while let Some(partition) = queue.pop() {
                    match work(tds, &partition, &mut rng) {
                        Ok(Out::Working(ts)) => lock(working).extend(ts),
                        Ok(Out::Results(rs)) => lock(results).extend(rs),
                        Err(e) => {
                            lock(first_err).get_or_insert(e);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = lock(&first_err).take() {
        return Err(e);
    }
    let working = std::mem::take(&mut *lock(&working));
    let results = std::mem::take(&mut *lock(&results));
    Ok((working, results))
}

/// Run a query through any protocol with `n_workers` concurrent TDS workers.
///
/// Protocols that need discovery (`C_Noise`, `Rnf_Noise`, `ED_Hist`) must
/// receive pre-filled `params` (from [`crate::runtime::SimWorld::prepare_params`]
/// or a declared domain/histogram) — the threaded runtime does not bootstrap
/// discovery itself.
pub fn run_threaded(
    tdss: &[Tds],
    querier: &Querier,
    query: &Query,
    params: &ProtocolParams,
    n_workers: usize,
) -> Result<Vec<Vec<Value>>> {
    if tdss.is_empty() {
        return Err(ProtocolError::Protocol("empty TDS population".into()));
    }
    match params.kind {
        ProtocolKind::RnfNoise { .. } | ProtocolKind::CNoise if params.noise_domain.is_empty() => {
            return Err(ProtocolError::Unsupported(
                "threaded noise protocols need a pre-discovered domain".into(),
            ))
        }
        ProtocolKind::EdHist { .. } if params.histogram.is_none() => {
            return Err(ProtocolError::Unsupported(
                "threaded ED_Hist needs a pre-discovered histogram".into(),
            ))
        }
        _ => {}
    }
    let n_workers = n_workers.clamp(1, tdss.len());
    let mut seed_rng = StdRng::seed_from_u64(0xc0ffee);
    let envelope = querier.make_envelope(query, params.kind, &mut seed_rng);

    // --- Collection phase: every TDS contributes concurrently. -----------
    let collected: Mutex<Vec<StoredTuple>> = Mutex::new(Vec::new());
    let first_err: Mutex<Option<ProtocolError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for (w, chunk) in tdss.chunks(tdss.len().div_ceil(n_workers)).enumerate() {
            let collected = &collected;
            let first_err = &first_err;
            let envelope = &envelope;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5eed + w as u64);
                for tds in chunk {
                    let step = (|| -> Result<Vec<StoredTuple>> {
                        let ctx = tds.open_query(envelope, params.clone(), 0)?;
                        tds.collect(&ctx, &mut rng)
                    })();
                    match step {
                        Ok(tuples) => lock(collected).extend(tuples),
                        Err(e) => {
                            lock(first_err).get_or_insert(e);
                            return;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = lock(&first_err).take() {
        return Err(e);
    }
    let mut working = std::mem::take(&mut *lock(&collected));

    let open = |tds: &Tds| -> Result<crate::tds::QueryContext> {
        tds.open_query(&envelope, params.clone(), 0)
    };

    match params.kind {
        // --- Basic: one filtering pass. -----------------------------------
        ProtocolKind::Basic => {
            let partitions = random_partitions(working, params.chunk.max(1), &mut seed_rng);
            let (_, results) =
                parallel_partitions(tdss, n_workers, 0xf117e4, partitions, |tds, p, rng| {
                    let ctx = open(tds)?;
                    Ok(Out::Results(tds.filter_plain(&ctx, p, rng)?))
                })?;
            let mut rows = querier.decrypt_results(&results)?;
            tdsql_sql::order::apply_order_limit(query, &mut rows)?;
            Ok(rows)
        }

        // --- S_Agg: iterative random partitions. --------------------------
        ProtocolKind::SAgg => {
            let mut first_pass = true;
            while first_pass || working.len() > 1 {
                let chunk_size = if first_pass {
                    params.chunk.max(1)
                } else {
                    params.alpha.max(2)
                };
                let partitions = random_partitions(working, chunk_size, &mut seed_rng);
                let fp = first_pass;
                let (next, _) =
                    parallel_partitions(tdss, n_workers, 0xfeed, partitions, |tds, p, rng| {
                        let ctx = open(tds)?;
                        let out = if fp {
                            tds.reduce_inputs(&ctx, p, RetagMode::None, rng)?
                        } else {
                            tds.reduce_partials(&ctx, p, RetagMode::None, rng)?
                        };
                        Ok(Out::Working(out))
                    })?;
                working = next;
                first_pass = false;
            }
            let mut rows = finalize_threaded(tdss, n_workers, querier, &open, working, params)?;
            tdsql_sql::order::apply_order_limit(query, &mut rows)?;
            Ok(rows)
        }

        // --- Tag-based protocols: per-group parallelism. -------------------
        ProtocolKind::RnfNoise { .. } | ProtocolKind::CNoise | ProtocolKind::EdHist { .. } => {
            // Step 1: per-tag partitions of collection tuples.
            let partitions: Vec<Vec<StoredTuple>> = tag_partitions(working, params.chunk.max(1))
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            let (mut next, _) =
                parallel_partitions(tdss, n_workers, 0x7a65, partitions, |tds, p, rng| {
                    let ctx = open(tds)?;
                    Ok(Out::Working(tds.reduce_inputs(
                        &ctx,
                        p,
                        RetagMode::DetPerGroup,
                        rng,
                    )?))
                })?;

            // Step 2: merge per group until every tag is a singleton.
            loop {
                let mut per_tag: std::collections::BTreeMap<GroupTag, usize> =
                    std::collections::BTreeMap::new();
                for t in &next {
                    *per_tag.entry(t.tag.clone()).or_default() += 1;
                }
                if per_tag.values().all(|&n| n <= 1) {
                    break;
                }
                let (pass, reduce): (Vec<StoredTuple>, Vec<StoredTuple>) =
                    next.into_iter().partition(|t| per_tag[&t.tag] <= 1);
                let partitions: Vec<Vec<StoredTuple>> = tag_partitions(reduce, params.alpha.max(2))
                    .into_iter()
                    .map(|(_, t)| t)
                    .collect();
                let (mut reduced, _) =
                    parallel_partitions(tdss, n_workers, 0x5e9, partitions, |tds, p, rng| {
                        let ctx = open(tds)?;
                        Ok(Out::Working(tds.reduce_partials(
                            &ctx,
                            p,
                            RetagMode::DetPerGroup,
                            rng,
                        )?))
                    })?;
                reduced.extend(pass);
                next = reduced;
            }
            let mut rows = finalize_threaded(tdss, n_workers, querier, &open, next, params)?;
            tdsql_sql::order::apply_order_limit(query, &mut rows)?;
            Ok(rows)
        }
    }
}

fn finalize_threaded<F>(
    tdss: &[Tds],
    n_workers: usize,
    querier: &Querier,
    open: &F,
    working: Vec<StoredTuple>,
    params: &ProtocolParams,
) -> Result<Vec<Vec<Value>>>
where
    F: Fn(&Tds) -> Result<crate::tds::QueryContext> + Sync,
{
    if working.is_empty() {
        return Ok(Vec::new());
    }
    let partitions: Vec<Vec<StoredTuple>> = working
        .chunks(params.chunk.max(1))
        .map(|c| c.to_vec())
        .collect();
    let (_, results) =
        parallel_partitions(tdss, n_workers, 0xf17e, partitions, move |tds, p, rng| {
            let ctx = open(tds)?;
            Ok(Out::Results(tds.finalize_groups(
                &ctx,
                p,
                ResultDest::Querier,
                rng,
            )?))
        })?;
    querier.decrypt_results(&results)
}

/// Backwards-compatible alias for the S_Agg-only entry point.
pub fn run_s_agg_threaded(
    tdss: &[Tds],
    querier: &Querier,
    query: &Query,
    params: &ProtocolParams,
    n_workers: usize,
) -> Result<Vec<Vec<Value>>> {
    run_threaded(tdss, querier, query, params, n_workers)
}
