//! Local relational engine: the query machinery each TDS runs over its own
//! data, also used centrally as the trusted reference oracle in tests.

pub mod group;
pub mod join;
pub mod select;
pub mod table;

pub use group::{execute_aggregate, AggregatePlan};
pub use join::JoinedRelation;
pub use select::{execute, output_columns, QueryOutput};
pub use table::{Database, Table};
