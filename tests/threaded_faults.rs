//! Fault injection on the threaded runtime: the at-least-once/dedup
//! machinery must hold under real thread interleaving, not just the
//! deterministic round scheduler.

mod common;

use common::assert_rows_eq;
use tdsql_core::access::AccessPolicy;
use tdsql_core::connectivity::FaultPlan;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::runtime::threaded::{run_threaded_faulty, FaultConfig};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::stats::Phase;
use tdsql_core::workload::{smart_meters, SmartMeterConfig};
use tdsql_core::ProtocolError;
use tdsql_crypto::credential::Role;
use tdsql_sql::engine::execute;
use tdsql_sql::parser::parse_query;

const SQL: &str = "SELECT c.district, COUNT(*), SUM(p.cons) FROM power p, consumer c \
                   WHERE c.cid = p.cid GROUP BY c.district";
const SFW_SQL: &str = "SELECT p.cid, p.cons FROM power p WHERE p.cons >= 0";

/// Every protocol paired with a query it supports (Basic is SFW-only).
fn all_protocols() -> Vec<(ProtocolKind, &'static str)> {
    vec![
        (ProtocolKind::Basic, SFW_SQL),
        (ProtocolKind::SAgg, SQL),
        (ProtocolKind::RnfNoise { nf: 2 }, SQL),
        (ProtocolKind::CNoise, SQL),
        (ProtocolKind::EdHist { buckets: 2 }, SQL),
    ]
}

#[test]
fn threaded_duplication_and_late_delivery_preserve_results() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 60,
        districts: 4,
        readings_per_tds: 1,
        ..Default::default()
    });
    for (kind, sql) in all_protocols() {
        let query = parse_query(sql).unwrap();
        let expected = execute(&oracle, &query).unwrap().rows;
        let mut world = SimBuilder::new()
            .seed(620)
            .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
        let querier = world.make_querier("energy-co", "supplier");
        let params = world.prepare_params(&query, kind).unwrap();
        let cfg = FaultConfig {
            faults: FaultPlan::seeded(42)
                .with_duplication(0.4)
                .with_late(0.3)
                .with_loss(0.2),
            ..Default::default()
        };
        let (rows, report) =
            run_threaded_faulty(&world.tdss, &querier, &query, &params, 6, &cfg).unwrap();
        assert_rows_eq(rows, expected, &format!("threaded faulty {}", kind.name()));
        assert!(
            report.faults.duplicates_dropped > 0,
            "{}: duplicate uploads must be observed and dropped: {:?}",
            kind.name(),
            report.faults
        );
        assert!(!report.partial, "{}: nothing was abandoned", kind.name());
    }
}

#[test]
fn threaded_corrupted_payloads_are_rejected_and_resent() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 50,
        districts: 3,
        readings_per_tds: 1,
        ..Default::default()
    });
    for (kind, sql) in all_protocols() {
        let query = parse_query(sql).unwrap();
        let expected = execute(&oracle, &query).unwrap().rows;
        let mut world = SimBuilder::new()
            .seed(621)
            .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
        let querier = world.make_querier("energy-co", "supplier");
        let params = world.prepare_params(&query, kind).unwrap();
        let cfg = FaultConfig {
            faults: FaultPlan::seeded(7).with_corruption(0.3),
            ..Default::default()
        };
        let (rows, report) =
            run_threaded_faulty(&world.tdss, &querier, &query, &params, 4, &cfg).unwrap();
        assert_rows_eq(rows, expected, &format!("threaded corrupt {}", kind.name()));
        assert!(
            report.faults.corrupt_rejected > 0,
            "{}: tampered payloads must be rejected: {:?}",
            kind.name(),
            report.faults
        );
    }
}

#[test]
fn threaded_retry_exhaustion_aborts_with_typed_error() {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 20,
        districts: 2,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let world = SimBuilder::new()
        .seed(622)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");
    let cfg = FaultConfig {
        faults: FaultPlan::seeded(9).with_loss(1.0),
        retry_budget: 5,
        degrade: false,
    };
    let err = run_threaded_faulty(
        &world.tdss,
        &querier,
        &query,
        &ProtocolParams::new(ProtocolKind::SAgg),
        4,
        &cfg,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ProtocolError::QueryAborted {
                phase: Phase::Collection,
                retries: 5
            }
        ),
        "total loss must exhaust the budget in collection: {err}"
    );
}

#[test]
fn threaded_degraded_run_abandons_items_and_flags_partial() {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 20,
        districts: 2,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let world = SimBuilder::new()
        .seed(623)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");
    let cfg = FaultConfig {
        faults: FaultPlan::seeded(9).with_loss(1.0),
        retry_budget: 4,
        degrade: true,
    };
    let (rows, report) = run_threaded_faulty(
        &world.tdss,
        &querier,
        &query,
        &ProtocolParams::new(ProtocolKind::SAgg),
        4,
        &cfg,
    )
    .unwrap();
    assert!(
        report.partial,
        "all contributions lost: run must be partial"
    );
    assert!(
        report.faults.items_abandoned > 0,
        "exhausted items must be counted: {:?}",
        report.faults
    );
    assert!(rows.is_empty(), "no tuples survived total loss");
}

#[test]
fn threaded_inactive_fault_plan_is_identity() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 30,
        districts: 3,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;
    let world = SimBuilder::new()
        .seed(624)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");
    let (rows, report) = run_threaded_faulty(
        &world.tdss,
        &querier,
        &query,
        &ProtocolParams::new(ProtocolKind::SAgg),
        4,
        &FaultConfig::default(),
    )
    .unwrap();
    assert_rows_eq(rows, expected, "no faults");
    assert_eq!(report.faults.total(), 0, "no fault counters without faults");
    assert!(!report.partial);
}

/// Decrypted result rows — order included — must be identical for any
/// worker count, healthy or faulty: outputs merge in work-item order, not
/// in upload-arrival order.
#[test]
fn threaded_rows_identical_across_worker_counts() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 48,
        districts: 4,
        readings_per_tds: 1,
        ..Default::default()
    });
    let faulty = FaultConfig {
        faults: FaultPlan::seeded(99)
            .with_loss(0.15)
            .with_duplication(0.25)
            .with_late(0.15)
            .with_corruption(0.1),
        ..Default::default()
    };
    for cfg in [FaultConfig::default(), faulty] {
        for (kind, sql) in all_protocols() {
            let query = parse_query(sql).unwrap();
            let expected = execute(&oracle, &query).unwrap().rows;
            let mut world = SimBuilder::new()
                .seed(630)
                .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
            let querier = world.make_querier("energy-co", "supplier");
            let params = world.prepare_params(&query, kind).unwrap();
            let label = format!(
                "{} ({})",
                kind.name(),
                if cfg.faults.is_active() {
                    "faulty"
                } else {
                    "healthy"
                }
            );
            let (ref_rows, ref_report) =
                run_threaded_faulty(&world.tdss, &querier, &query, &params, 1, &cfg)
                    .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
            assert_rows_eq(ref_rows.clone(), expected, &label);
            for w in [2usize, 5, 8] {
                let (rows, report) =
                    run_threaded_faulty(&world.tdss, &querier, &query, &params, w, &cfg)
                        .unwrap_or_else(|e| panic!("{label}: {w} workers failed: {e}"));
                assert_eq!(
                    rows, ref_rows,
                    "{label}: {w}-worker rows (incl. order) differ from 1-worker reference"
                );
                assert_eq!(
                    report.faults, ref_report.faults,
                    "{label}: fault counters must not depend on the worker count"
                );
            }
        }
    }
}
