//! Local (internal) joins.
//!
//! The dialect forbids joins *across* TDSs, but comma joins in `FROM` are
//! internal joins executed locally by each TDS (footnote 5 of the paper) —
//! e.g. joining the smart meter's own `Power` readings with its own
//! `Consumer` record. Cardinalities are tiny on a personal data server, so a
//! nested-loop cross product filtered by the WHERE clause is the honest
//! choice.

use crate::ast::TableRef;
use crate::engine::table::Database;
use crate::error::{Result, SqlError};
use crate::expr::RowEnv;
use crate::schema::TableSchema;
use crate::value::Value;

/// The bound FROM list: binding names with owned schemas, in query order.
#[derive(Debug, Clone)]
pub struct JoinedRelation {
    bindings: Vec<(String, TableSchema)>,
}

impl JoinedRelation {
    /// Resolve the FROM list against a database.
    pub fn bind(db: &Database, from: &[TableRef]) -> Result<Self> {
        if from.is_empty() {
            return Err(SqlError::Parse {
                message: "FROM list is empty".into(),
            });
        }
        let mut bindings = Vec::with_capacity(from.len());
        for t in from {
            let table = db.table(&t.table)?;
            let name = t.binding().to_string();
            if bindings.iter().any(|(n, _)| *n == name) {
                return Err(SqlError::Parse {
                    message: format!("duplicate binding {name} in FROM"),
                });
            }
            bindings.push((name, table.schema().clone()));
        }
        Ok(Self { bindings })
    }

    /// Binding names and schemas, in FROM order.
    pub fn bindings(&self) -> &[(String, TableSchema)] {
        &self.bindings
    }

    /// Build a [`RowEnv`] over one joined row (one row slice per binding).
    pub fn env<'a>(&'a self, rows: &[&'a [Value]]) -> RowEnv<'a> {
        debug_assert_eq!(rows.len(), self.bindings.len());
        let mut env = RowEnv::empty();
        for ((name, schema), row) in self.bindings.iter().zip(rows.iter()) {
            env.push(name, schema, row);
        }
        env
    }

    /// Iterate the cross product of the bound tables, invoking `f` with the
    /// per-binding row slices. `f` may abort the scan by returning an error.
    pub fn for_each_row<F>(&self, db: &Database, mut f: F) -> Result<()>
    where
        F: FnMut(&[&[Value]]) -> Result<()>,
    {
        let tables: Vec<&[Vec<Value>]> = self
            .bindings
            .iter()
            .map(|(_, schema)| db.table(&schema.name).map(|t| t.rows()))
            .collect::<Result<_>>()?;
        let mut current: Vec<&[Value]> = Vec::with_capacity(tables.len());
        fn rec<'a, F>(
            tables: &[&'a [Vec<Value>]],
            current: &mut Vec<&'a [Value]>,
            f: &mut F,
        ) -> Result<()>
        where
            F: FnMut(&[&[Value]]) -> Result<()>,
        {
            match tables.split_first() {
                None => f(current),
                Some((first, rest)) => {
                    for row in first.iter() {
                        current.push(row.as_slice());
                        rec(rest, current, f)?;
                        current.pop();
                    }
                    Ok(())
                }
            }
        }
        rec(&tables, &mut current, &mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new("a", vec![Column::new("x", DataType::Int)]));
        db.create_table(TableSchema::new("b", vec![Column::new("y", DataType::Int)]));
        for i in 0..3 {
            db.insert("a", vec![Value::Int(i)]).unwrap();
        }
        for j in 0..2 {
            db.insert("b", vec![Value::Int(10 + j)]).unwrap();
        }
        db
    }

    #[test]
    fn cross_product_size() {
        let db = db();
        let from = vec![
            TableRef {
                table: "a".into(),
                alias: None,
            },
            TableRef {
                table: "b".into(),
                alias: Some("bb".into()),
            },
        ];
        let rel = JoinedRelation::bind(&db, &from).unwrap();
        let mut count = 0;
        rel.for_each_row(&db, |rows| {
            assert_eq!(rows.len(), 2);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 6);
        assert_eq!(rel.bindings()[1].0, "bb");
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = db();
        let from = vec![
            TableRef {
                table: "a".into(),
                alias: Some("t".into()),
            },
            TableRef {
                table: "b".into(),
                alias: Some("t".into()),
            },
        ];
        assert!(JoinedRelation::bind(&db, &from).is_err());
    }

    #[test]
    fn empty_from_rejected() {
        let db = db();
        assert!(JoinedRelation::bind(&db, &[]).is_err());
    }

    #[test]
    fn unknown_table_rejected() {
        let db = db();
        let from = vec![TableRef {
            table: "zzz".into(),
            alias: None,
        }];
        assert!(matches!(
            JoinedRelation::bind(&db, &from),
            Err(SqlError::UnknownTable(_))
        ));
    }
}
