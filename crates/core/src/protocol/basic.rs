//! Basic protocol for Select-From-Where queries (Section 3.2).
//!
//! After the collection phase (handled by the runtime), the Covering Result
//! — true tuples plus dummies, all `nDet_Enc`-encrypted — is partitioned by
//! the SSI into uninterpreted chunks; connected TDSs download them, filter
//! out dummy tuples, and send the true tuples back under `k1`.

use crate::error::Result;
use crate::message::QueryEnvelope;
use crate::partition::random_partitions;
use crate::protocol::ProtocolParams;
use crate::runtime::round::{SimWorld, StepOutput};
use crate::stats::Phase;

/// Run the filtering phase of the basic protocol.
pub fn run(
    world: &mut SimWorld,
    qid: u64,
    env: &QueryEnvelope,
    params: &ProtocolParams,
) -> Result<()> {
    let working = world.ssi.take_working(qid)?;
    if working.is_empty() {
        return Ok(());
    }
    let partitions = random_partitions(working, params.chunk, &mut world.rng);
    world.process_partitions(
        qid,
        Phase::Filtering,
        env,
        params,
        partitions,
        |tds, ctx, partition, rng| Ok(StepOutput::Results(tds.filter_plain(ctx, partition, rng)?)),
    )
}
