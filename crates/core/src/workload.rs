//! Synthetic workload generators for the paper's motivating scenarios.
//!
//! * [`smart_meters`] — the energy scenario of Section 2.3: every TDS is a
//!   smart meter hosting its consumer record and power readings; districts
//!   follow a uniform or Zipf distribution (skew is what the noise and
//!   histogram protocols must hide).
//! * [`health_survey`] — the PCEHR scenario: every TDS is a personal health
//!   record, queried for epidemiological aggregates.

use tdsql_crypto::rng::StdRng;
use tdsql_crypto::rng::{Rng, SeedableRng};

use tdsql_sql::engine::Database;
use tdsql_sql::schema::{Catalog, Column, TableSchema};
use tdsql_sql::value::{DataType, Value};

/// District-assignment skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Skew {
    /// Uniform assignment.
    Uniform,
    /// Zipf with the given exponent (1.0 is the classic web-like skew).
    Zipf(f64),
}

/// Configuration for the smart-meter population.
#[derive(Debug, Clone)]
pub struct SmartMeterConfig {
    /// Number of TDSs (meters).
    pub n_tds: usize,
    /// Number of districts (the G of the evaluation).
    pub districts: usize,
    /// District-assignment skew.
    pub skew: Skew,
    /// Power readings per meter.
    pub readings_per_tds: usize,
    /// Fraction of consumers living in a detached house.
    pub detached_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SmartMeterConfig {
    fn default() -> Self {
        Self {
            n_tds: 50,
            districts: 5,
            skew: Skew::Uniform,
            readings_per_tds: 2,
            detached_fraction: 0.6,
            seed: 7,
        }
    }
}

/// The smart-meter common schema (`Consumer`, `Power`).
pub fn smart_meter_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "consumer",
        vec![
            Column::new("cid", DataType::Int),
            Column::new("district", DataType::Str),
            Column::new("accomodation", DataType::Str),
        ],
    ));
    cat.add_table(TableSchema::new(
        "power",
        vec![
            Column::new("cid", DataType::Int),
            Column::new("cons", DataType::Float),
            Column::new("period", DataType::Int),
        ],
    ));
    cat
}

fn empty_db(catalog: &Catalog) -> Database {
    let mut db = Database::new();
    for t in catalog.tables() {
        db.create_table(t.clone());
    }
    db
}

/// Sample a district index according to the skew.
fn sample_district(cfg: &SmartMeterConfig, cdf: &[f64], rng: &mut StdRng) -> usize {
    match cfg.skew {
        Skew::Uniform => rng.gen_range(0..cfg.districts),
        Skew::Zipf(_) => {
            let x: f64 = rng.gen();
            cdf.partition_point(|&p| p < x).min(cfg.districts - 1)
        }
    }
}

/// Generate the per-TDS databases plus the union database (the trusted
/// reference oracle).
pub fn smart_meters(cfg: &SmartMeterConfig) -> (Vec<Database>, Database) {
    assert!(cfg.districts > 0 && cfg.n_tds > 0);
    let catalog = smart_meter_catalog();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Zipf CDF over district ranks.
    let cdf: Vec<f64> = match cfg.skew {
        Skew::Uniform => Vec::new(),
        Skew::Zipf(s) => {
            let weights: Vec<f64> = (1..=cfg.districts)
                .map(|k| 1.0 / (k as f64).powf(s))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect()
        }
    };

    let mut dbs = Vec::with_capacity(cfg.n_tds);
    let mut union = empty_db(&catalog);
    for cid in 0..cfg.n_tds {
        let mut db = empty_db(&catalog);
        let district = sample_district(cfg, &cdf, &mut rng);
        let detached = rng.gen_bool(cfg.detached_fraction.clamp(0.0, 1.0));
        let consumer_row = vec![
            Value::Int(cid as i64),
            Value::Str(format!("district-{district:04}")),
            Value::Str(
                if detached {
                    "detached house"
                } else {
                    "apartment"
                }
                .into(),
            ),
        ];
        db.insert("consumer", consumer_row.clone()).expect("schema");
        union.insert("consumer", consumer_row).expect("schema");
        // Consumption depends on the accommodation, with noise, so the
        // per-group averages are meaningfully different.
        let base = if detached { 12.0 } else { 5.0 };
        for period in 0..cfg.readings_per_tds {
            let cons = base + rng.gen_range(-2.0..2.0) + district as f64 * 0.25;
            let power_row = vec![
                Value::Int(cid as i64),
                Value::Float(cons),
                Value::Int(period as i64),
            ];
            db.insert("power", power_row.clone()).expect("schema");
            union.insert("power", power_row).expect("schema");
        }
        dbs.push(db);
    }
    (dbs, union)
}

/// Configuration for the health-survey population.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Number of TDSs (personal records).
    pub n_tds: usize,
    /// Cities in the survey.
    pub cities: Vec<String>,
    /// Probability of a flu diagnosis.
    pub flu_rate: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            n_tds: 40,
            cities: vec!["Memphis".into(), "Nashville".into(), "Knoxville".into()],
            flu_rate: 0.2,
            seed: 11,
        }
    }
}

/// The health common schema.
pub fn health_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "health",
        vec![
            Column::new("pid", DataType::Int),
            Column::new("age", DataType::Int),
            Column::new("city", DataType::Str),
            Column::new("flu", DataType::Bool),
        ],
    ));
    cat
}

/// Generate per-TDS health records plus the union oracle.
pub fn health_survey(cfg: &HealthConfig) -> (Vec<Database>, Database) {
    assert!(cfg.n_tds > 0 && !cfg.cities.is_empty());
    let catalog = health_catalog();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut dbs = Vec::with_capacity(cfg.n_tds);
    let mut union = empty_db(&catalog);
    for pid in 0..cfg.n_tds {
        let mut db = empty_db(&catalog);
        let row = vec![
            Value::Int(pid as i64),
            Value::Int(rng.gen_range(0..100i64)),
            Value::Str(cfg.cities[rng.gen_range(0..cfg.cities.len())].clone()),
            Value::Bool(rng.gen_bool(cfg.flu_rate.clamp(0.0, 1.0))),
        ];
        db.insert("health", row.clone()).expect("schema");
        union.insert("health", row).expect("schema");
        dbs.push(db);
    }
    (dbs, union)
}

/// Configuration for the GPS-tracker population (the paper's car-insurance
/// billing scenario: a tracker the driver cannot tamper with records trips;
/// the insurer may only learn aggregates).
#[derive(Debug, Clone)]
pub struct GpsConfig {
    /// Number of TDSs (vehicle trackers).
    pub n_tds: usize,
    /// Trips recorded per tracker.
    pub trips_per_tds: usize,
    /// Number of pricing zones.
    pub zones: usize,
    /// Probability a trip contains a speeding event.
    pub speeding_rate: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for GpsConfig {
    fn default() -> Self {
        Self {
            n_tds: 50,
            trips_per_tds: 3,
            zones: 4,
            speeding_rate: 0.15,
            seed: 17,
        }
    }
}

/// The GPS common schema.
pub fn gps_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "trips",
        vec![
            Column::new("vid", DataType::Int),
            Column::new("day", DataType::Int),
            Column::new("km", DataType::Float),
            Column::new("zone", DataType::Str),
            Column::new("speeding", DataType::Bool),
        ],
    ));
    cat
}

/// Generate per-tracker trip logs plus the union oracle.
pub fn gps_traces(cfg: &GpsConfig) -> (Vec<Database>, Database) {
    assert!(cfg.n_tds > 0 && cfg.zones > 0);
    let catalog = gps_catalog();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut dbs = Vec::with_capacity(cfg.n_tds);
    let mut union = empty_db(&catalog);
    for vid in 0..cfg.n_tds {
        let mut db = empty_db(&catalog);
        // Drivers favour a home zone; occasional trips elsewhere.
        let home_zone = rng.gen_range(0..cfg.zones);
        for day in 0..cfg.trips_per_tds {
            let zone = if rng.gen_bool(0.8) {
                home_zone
            } else {
                rng.gen_range(0..cfg.zones)
            };
            let row = vec![
                Value::Int(vid as i64),
                Value::Int(day as i64),
                Value::Float(2.0 + rng.gen_range(0.0..48.0)),
                Value::Str(format!("zone-{zone:02}")),
                Value::Bool(rng.gen_bool(cfg.speeding_rate.clamp(0.0, 1.0))),
            ];
            db.insert("trips", row.clone()).expect("schema");
            union.insert("trips", row).expect("schema");
        }
        dbs.push(db);
    }
    (dbs, union)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_traces_shape() {
        let cfg = GpsConfig {
            n_tds: 12,
            trips_per_tds: 4,
            ..Default::default()
        };
        let (dbs, union) = gps_traces(&cfg);
        assert_eq!(dbs.len(), 12);
        assert_eq!(union.table("trips").unwrap().len(), 48);
        for db in &dbs {
            assert_eq!(db.table("trips").unwrap().len(), 4);
        }
        // Home-zone bias: each vehicle's modal zone covers most trips.
        let rows = dbs[0].table("trips").unwrap().rows();
        let mut zones = std::collections::BTreeMap::new();
        for r in rows {
            *zones.entry(format!("{}", r[3])).or_insert(0usize) += 1;
        }
        assert!(*zones.values().max().unwrap() >= 2);
    }

    #[test]
    fn smart_meters_union_matches_parts() {
        let cfg = SmartMeterConfig {
            n_tds: 20,
            readings_per_tds: 3,
            ..Default::default()
        };
        let (dbs, union) = smart_meters(&cfg);
        assert_eq!(dbs.len(), 20);
        let total_power: usize = dbs.iter().map(|d| d.table("power").unwrap().len()).sum();
        assert_eq!(total_power, union.table("power").unwrap().len());
        assert_eq!(total_power, 60);
        assert_eq!(union.table("consumer").unwrap().len(), 20);
    }

    #[test]
    fn zipf_skews_districts() {
        let cfg = SmartMeterConfig {
            n_tds: 2000,
            districts: 10,
            skew: Skew::Zipf(1.2),
            readings_per_tds: 1,
            ..Default::default()
        };
        let (_, union) = smart_meters(&cfg);
        let mut counts = std::collections::BTreeMap::new();
        for row in union.table("consumer").unwrap().rows() {
            if let Value::Str(d) = &row[1] {
                *counts.entry(d.clone()).or_insert(0usize) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap();
        assert!(
            max > min * 3,
            "Zipf must produce visible skew ({max} vs {min})"
        );
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SmartMeterConfig::default();
        let (a, _) = smart_meters(&cfg);
        let (b, _) = smart_meters(&cfg);
        assert_eq!(
            a[0].table("power").unwrap().rows(),
            b[0].table("power").unwrap().rows()
        );
    }

    #[test]
    fn health_survey_shape() {
        let cfg = HealthConfig {
            n_tds: 15,
            ..Default::default()
        };
        let (dbs, union) = health_survey(&cfg);
        assert_eq!(dbs.len(), 15);
        assert_eq!(union.table("health").unwrap().len(), 15);
        for db in &dbs {
            assert_eq!(db.table("health").unwrap().len(), 1);
        }
    }
}
