//! Protocol runtimes.
//!
//! * [`round`] — the deterministic, seeded round-based runtime used by tests,
//!   examples and benchmarks;
//! * [`threaded`] — a concurrent runtime where every TDS is a worker thread
//!   and the SSI is shared state, demonstrating that the protocol logic is
//!   runtime-agnostic;
//! * [`service`] — the transport-agnostic driver that executes the same
//!   compiled plans over the [`crate::service`] seam, in-process or against
//!   the `tdsql-net` framed TCP servers.

pub mod round;
pub mod service;
pub mod threaded;

pub use round::{SimBuilder, SimWorld};
