//! The protocol-agnostic execution plan — **one compiler, many interpreters**.
//!
//! The paper's four protocols (Basic, S_Agg, Rnf/C_Noise, ED_Hist) all share
//! one dataflow shape: *collect* sealed tuples from the TDS population,
//! *reduce* them (iteratively or per tag) and *finalize* the survivors into
//! sealed result rows. What distinguishes the protocols is a handful of
//! choices along that shape: which tag travels on collection tuples, how the
//! SSI partitions the working set, when reduction terminates, and where the
//! finalized rows are sealed to.
//!
//! [`PhasePlan::compile`] makes those choices explicit: it maps a query +
//! [`ProtocolParams`] to a small IR of steps that every backend interprets —
//! the deterministic round runtime (`runtime::round`), the concurrent
//! runtime (`runtime::threaded`) and the virtual-time DES bench
//! (`tdsql-bench::des`). The static analyzer (`tdsql-analyze`) lowers its
//! leakage labels from the same compiled plan, and the plan cross-checks
//! itself against the protocol's [`ExposureDeclaration`], so the artifact
//! that executes is the artifact that is audited.

use crate::leakage::{ExposureDeclaration, TagForm};
use crate::protocol::{ProtocolKind, ProtocolParams};
use crate::stats::Phase;
use crate::tds::{ResultDest, RetagMode};
use tdsql_sql::ast::Query;

/// Which cleartext tag collection tuples carry — the only partitioning
/// information the SSI ever gets, and therefore the protocol's whole
/// collection-phase exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPolicy {
    /// Unlinkable `nDet` ciphertexts only (Basic, S_Agg).
    None,
    /// `Det_Enc(A_G)` per-group tags, hidden under fakes (noise protocols).
    DetPerGroup,
    /// Keyed bucket hashes `h(bucketId)` (ED_Hist).
    Bucket,
}

impl TagPolicy {
    /// The [`TagForm`] tuples sealed under this policy show the SSI.
    pub fn form(self) -> TagForm {
        match self {
            TagPolicy::None => TagForm::None,
            TagPolicy::DetPerGroup => TagForm::Det,
            TagPolicy::Bucket => TagForm::Bucket,
        }
    }
}

/// What the discovery pre-phase must produce before collection can start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryNeed {
    /// The grouping-attribute domain (C_Noise, Rnf_Noise fake sampling).
    Domain,
    /// The grouping-value distribution, flattened into equi-depth buckets.
    Histogram {
        /// Buckets to build from the discovered distribution.
        buckets: u32,
    },
}

/// The collection step: every reachable TDS evaluates the query locally and
/// uploads sealed, padded tuples under this tag policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectSpec {
    /// Tag attached to each sealed tuple.
    pub tag_policy: TagPolicy,
    /// Uniform payload size; encoding fails (instead of leaking) beyond it.
    pub pad: usize,
}

/// How the SSI splits the working set into partitions for TDS consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Shuffle, then chunk — the SSI learns nothing from placement.
    Random {
        /// Maximum tuples per partition.
        chunk: usize,
    },
    /// Group equal tags together, then chunk each group — per-group
    /// parallelism bought with the tag exposure declared at collection.
    ByTag {
        /// Maximum tuples per partition.
        chunk: usize,
    },
}

/// When the iterative reduce phase stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Until {
    /// One batch remains in total (S_Agg's serial tail).
    SingleBatch,
    /// Every tag holds at most one batch (tag protocols stay parallel).
    TagSingletons,
}

/// The reduce step: a first wave over raw collection tuples, then iterated
/// waves over partial batches until the termination condition holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceSpec {
    /// Partitioning of the first wave (raw collection tuples, `chunk`-sized).
    pub first: Partitioning,
    /// Partitioning of every later wave (partial batches, α-sized).
    pub again: Partitioning,
    /// Tagging of reduce outputs.
    pub retag: RetagMode,
    /// Termination condition.
    pub until: Until,
}

impl ReduceSpec {
    /// The [`TagForm`] reduce outputs show the SSI.
    pub fn retag_form(&self) -> TagForm {
        match self.retag {
            RetagMode::None => TagForm::None,
            RetagMode::DetPerGroup => TagForm::Det,
        }
    }
}

/// What the finalize step does to each surviving tuple batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeOp {
    /// Drop dummies and re-seal plain rows (Basic).
    FilterRows,
    /// HAVING + projection over per-group partials (aggregate protocols).
    FinalizeGroups,
}

/// How the finalize step partitions the surviving working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizePartitioning {
    /// One partition holding everything (S_Agg: a single final batch).
    Whole,
    /// Sequential chunks (tag protocols: one singleton batch per group).
    Chunked {
        /// Maximum tuples per partition.
        chunk: usize,
    },
    /// Shuffle + chunk (Basic: placement must stay uninformative).
    Random {
        /// Maximum tuples per partition.
        chunk: usize,
    },
}

/// The finalize step: seal results for `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalizeSpec {
    /// Row-level operation.
    pub op: FinalizeOp,
    /// Who can open the results (`k1` querier, or `k2` for discovery).
    pub dest: ResultDest,
    /// Partitioning of the final working set.
    pub partitioning: FinalizePartitioning,
}

/// The wire format one phase's emissions are framed with (see
/// [`tuple_codec`](crate::tuple_codec) for the encoders and
/// [`tuple_codec::framing`](crate::tuple_codec::framing) for the header
/// arithmetic the static size verifier uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmissionCodec {
    /// `PlainTuple` framing: kind byte + row values, padded.
    PlainTuple,
    /// `AggInput` framing: fake flag + group key + input values, padded.
    AggInput,
    /// `PartialAggBatch` framing: per-group partial states, unpadded
    /// (ciphertext count is declared, contents are `nDet`-sealed).
    PartialBatch,
    /// `ResultRow` framing: finalized row values, unpadded.
    ResultRow,
}

/// One phase's emission contract: which codec frames the plaintext, whether
/// a uniform pad hides its length, and which tag travels in the clear.
///
/// This is the plan-level input to the static size-abstraction pass
/// (`tdsql-analyze::verify::sizes`): every emission with `pad: Some(_)`
/// must provably fit its pad for all reachable plaintexts, and every
/// emission with `pad: None` must be declared size-exempt (batch shapes
/// whose counts the SSI already learns from partitioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmissionSpec {
    /// The phase whose uploads this describes.
    pub phase: Phase,
    /// Wire framing of the sealed plaintext.
    pub codec: EmissionCodec,
    /// Uniform plaintext pad (pre-encryption), if this emission is padded.
    pub pad: Option<usize>,
    /// The cleartext tag form accompanying each sealed blob.
    pub tag: TagForm,
}

/// The delivery contract one phase imposes on plan interpreters running
/// over at-least-once transport (see
/// [`PhasePlan::idempotence_requirements`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdempotenceRequirement {
    /// The phase the contract applies to.
    pub phase: Phase,
    /// Re-running the phase's computation on the same work item is
    /// harmless: the SSI may re-send a timed-out partition freely.
    pub replayable_compute: bool,
    /// Merging the same *output* twice changes the result: the SSI must
    /// settle each work item exactly once (assignment-id dedup).
    pub dedup_required: bool,
    /// One-line justification.
    pub why: &'static str,
}

/// A compiled, protocol-agnostic execution plan. Every backend interprets
/// this structure instead of dispatching on [`ProtocolKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePlan {
    /// Protocol the plan was compiled from (kept for envelopes/declarations).
    pub kind: ProtocolKind,
    /// Whether the query runs the Group By framework.
    pub aggregate: bool,
    /// Discovery pre-phase, when the protocol bootstraps from the domain.
    pub discovery: Option<DiscoveryNeed>,
    /// The collection step.
    pub collect: CollectSpec,
    /// The reduce step; `None` for Basic (collection feeds finalize directly).
    pub reduce: Option<ReduceSpec>,
    /// The finalize step.
    pub finalize: FinalizeSpec,
}

impl PhasePlan {
    /// Compile a query + protocol parameters into the execution plan. The
    /// mapping is total: every `ProtocolKind` has exactly one plan shape,
    /// and the compiled plan is debug-asserted against the protocol's
    /// [`ExposureDeclaration`].
    pub fn compile(query: &Query, params: &ProtocolParams) -> PhasePlan {
        let chunk = params.chunk.max(1);
        let alpha = params.alpha.max(2);
        let (tag_policy, discovery, reduce, finalize) = match params.kind {
            ProtocolKind::Basic => (
                TagPolicy::None,
                None,
                None,
                FinalizeSpec {
                    op: FinalizeOp::FilterRows,
                    dest: ResultDest::Querier,
                    partitioning: FinalizePartitioning::Random { chunk },
                },
            ),
            ProtocolKind::SAgg => (
                TagPolicy::None,
                None,
                Some(ReduceSpec {
                    first: Partitioning::Random { chunk },
                    again: Partitioning::Random { chunk: alpha },
                    retag: RetagMode::None,
                    until: Until::SingleBatch,
                }),
                FinalizeSpec {
                    op: FinalizeOp::FinalizeGroups,
                    dest: ResultDest::Querier,
                    partitioning: FinalizePartitioning::Whole,
                },
            ),
            ProtocolKind::RnfNoise { .. } | ProtocolKind::CNoise => (
                TagPolicy::DetPerGroup,
                Some(DiscoveryNeed::Domain),
                Some(ReduceSpec {
                    first: Partitioning::ByTag { chunk },
                    again: Partitioning::ByTag { chunk: alpha },
                    retag: RetagMode::DetPerGroup,
                    until: Until::TagSingletons,
                }),
                FinalizeSpec {
                    op: FinalizeOp::FinalizeGroups,
                    dest: ResultDest::Querier,
                    partitioning: FinalizePartitioning::Chunked { chunk },
                },
            ),
            ProtocolKind::EdHist { buckets } => (
                TagPolicy::Bucket,
                Some(DiscoveryNeed::Histogram { buckets }),
                Some(ReduceSpec {
                    first: Partitioning::ByTag { chunk },
                    again: Partitioning::ByTag { chunk: alpha },
                    retag: RetagMode::DetPerGroup,
                    until: Until::TagSingletons,
                }),
                FinalizeSpec {
                    op: FinalizeOp::FinalizeGroups,
                    dest: ResultDest::Querier,
                    partitioning: FinalizePartitioning::Chunked { chunk },
                },
            ),
        };
        let plan = PhasePlan {
            kind: params.kind,
            aggregate: query.is_aggregate(),
            discovery,
            collect: CollectSpec {
                tag_policy,
                pad: params.pad,
            },
            reduce,
            finalize,
        };
        debug_assert!(
            plan.undeclared_exposures().is_empty(),
            "compiled plan exposes undeclared tag forms: {:?}",
            plan.undeclared_exposures()
        );
        plan
    }

    /// Redirect the finalize step (the discovery sub-protocol seals for
    /// TDSs instead of the querier).
    pub fn with_dest(mut self, dest: ResultDest) -> PhasePlan {
        self.finalize.dest = dest;
        self
    }

    /// Every (phase, tag form) pair the plan will show the SSI.
    pub fn exposed_forms(&self) -> Vec<(Phase, TagForm)> {
        let mut out = vec![(Phase::Collection, self.collect.tag_policy.form())];
        if let Some(reduce) = &self.reduce {
            out.push((Phase::Aggregation, reduce.retag_form()));
        }
        out.push((Phase::Filtering, TagForm::None));
        out
    }

    /// Every emission the plan's phases put on the wire, in phase order.
    ///
    /// The discovery pre-phase runs an S_Agg sub-protocol, so its uploads
    /// are padded `AggInput` frames under the same pad; collection uploads
    /// are `AggInput` (aggregate queries) or `PlainTuple` (SFW) frames,
    /// padded; reduce outputs are `PartialAggBatch` frames whose size is a
    /// declared function of the partition's group count, not of any tuple's
    /// content; finalize outputs are `ResultRow` frames sealed per row.
    pub fn emissions(&self) -> Vec<EmissionSpec> {
        let mut out = Vec::new();
        if self.discovery.is_some() {
            out.push(EmissionSpec {
                phase: Phase::Discovery,
                codec: EmissionCodec::AggInput,
                pad: Some(self.collect.pad),
                tag: TagForm::None,
            });
        }
        out.push(EmissionSpec {
            phase: Phase::Collection,
            codec: if self.aggregate {
                EmissionCodec::AggInput
            } else {
                EmissionCodec::PlainTuple
            },
            pad: Some(self.collect.pad),
            tag: self.collect.tag_policy.form(),
        });
        if let Some(reduce) = &self.reduce {
            out.push(EmissionSpec {
                phase: Phase::Aggregation,
                codec: EmissionCodec::PartialBatch,
                pad: None,
                tag: reduce.retag_form(),
            });
        }
        out.push(EmissionSpec {
            phase: Phase::Filtering,
            codec: EmissionCodec::ResultRow,
            pad: None,
            tag: TagForm::None,
        });
        out
    }

    /// Cross-check the plan against the protocol's [`ExposureDeclaration`]:
    /// returns every (phase, form) the plan exposes but the declaration does
    /// not allow. Empty for every plan [`PhasePlan::compile`] produces; a
    /// hand-mutated (mislabeled) plan reports its leaks here.
    pub fn undeclared_exposures(&self) -> Vec<(Phase, TagForm)> {
        let decl = ExposureDeclaration::for_protocol(self.kind);
        self.exposed_forms()
            .into_iter()
            .filter(|(phase, form)| !decl.allows(*phase, *form))
            .collect()
    }

    /// The delivery contract each phase of this plan imposes on an
    /// interpreter running over at-least-once transport.
    ///
    /// Every interpreter (round, threaded, DES) must honour these: the
    /// transport may re-send, duplicate, delay or corrupt any message, so
    /// the contract splits into what may be repeated freely and what must
    /// be deduplicated. Workers are pure functions of their input
    /// partition (plus an RNG that only affects ciphertext freshness), so
    /// *compute* is always replayable; *outputs* are additive contributions
    /// (tuples, partial aggregates, result rows), so *settlement* must be
    /// exactly-once — the SSI's assignment-id ledger enforces it.
    pub fn idempotence_requirements(&self) -> Vec<IdempotenceRequirement> {
        let mut out = Vec::new();
        if self.discovery.is_some() {
            out.push(IdempotenceRequirement {
                phase: Phase::Discovery,
                replayable_compute: true,
                dedup_required: true,
                why: "the discovery sub-query is an S_Agg run; duplicated \
                      deliveries skew the discovered distribution",
            });
        }
        out.push(IdempotenceRequirement {
            phase: Phase::Collection,
            replayable_compute: true,
            dedup_required: true,
            why: "a TDS contribution merged twice double-counts its tuples",
        });
        if self.reduce.is_some() {
            out.push(IdempotenceRequirement {
                phase: Phase::Aggregation,
                replayable_compute: true,
                dedup_required: true,
                why: "partial aggregates are additive; a duplicated batch double-counts",
            });
        }
        out.push(IdempotenceRequirement {
            phase: Phase::Filtering,
            replayable_compute: true,
            dedup_required: true,
            why: "a duplicated finalize batch emits duplicate result rows",
        });
        out
    }

    /// Render the plan as stable, line-oriented text (used by `explain` and
    /// the golden plan-snapshot tests).
    pub fn render(&self) -> Vec<String> {
        fn part(p: Partitioning) -> String {
            match p {
                Partitioning::Random { chunk } => format!("random({chunk})"),
                Partitioning::ByTag { chunk } => format!("by-tag({chunk})"),
            }
        }
        let mut out = Vec::new();
        match self.discovery {
            Some(DiscoveryNeed::Domain) => out.push(
                "discovery: grouping domain via k2-sealed S_Agg sub-query".to_string(),
            ),
            Some(DiscoveryNeed::Histogram { buckets }) => out.push(format!(
                "discovery: distribution histogram ({buckets} buckets) via k2-sealed S_Agg sub-query"
            )),
            None => {}
        }
        let tag = match self.collect.tag_policy {
            TagPolicy::None => "none",
            TagPolicy::DetPerGroup => "det",
            TagPolicy::Bucket => "bucket",
        };
        out.push(format!("collect:   tag={tag} pad={}", self.collect.pad));
        if let Some(r) = &self.reduce {
            let retag = match r.retag {
                RetagMode::None => "none",
                RetagMode::DetPerGroup => "det",
            };
            let until = match r.until {
                Until::SingleBatch => "single batch",
                Until::TagSingletons => "tag singletons",
            };
            out.push(format!(
                "reduce:    {} then {} [retag={retag}] until {until}",
                part(r.first),
                part(r.again)
            ));
        }
        let op = match self.finalize.op {
            FinalizeOp::FilterRows => "filter rows",
            FinalizeOp::FinalizeGroups => "finalize groups",
        };
        let dest = match self.finalize.dest {
            ResultDest::Querier => "querier (k1)",
            ResultDest::Tds => "tds (k2)",
        };
        let fpart = match self.finalize.partitioning {
            FinalizePartitioning::Whole => "whole".to_string(),
            FinalizePartitioning::Chunked { chunk } => format!("chunked({chunk})"),
            FinalizePartitioning::Random { chunk } => format!("random({chunk})"),
        };
        out.push(format!("finalize:  {op} via {fpart} -> {dest}"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdsql_sql::parser::parse_query;

    fn agg_query() -> Query {
        parse_query("SELECT district, COUNT(*) FROM consumer GROUP BY district").unwrap()
    }

    fn sfw_query() -> Query {
        parse_query("SELECT cid FROM consumer WHERE cons > 1").unwrap()
    }

    const ALL_KINDS: [ProtocolKind; 5] = [
        ProtocolKind::Basic,
        ProtocolKind::SAgg,
        ProtocolKind::RnfNoise { nf: 2 },
        ProtocolKind::CNoise,
        ProtocolKind::EdHist { buckets: 4 },
    ];

    #[test]
    fn compiled_plans_match_their_declarations() {
        for kind in ALL_KINDS {
            let query = if kind == ProtocolKind::Basic {
                sfw_query()
            } else {
                agg_query()
            };
            let plan = PhasePlan::compile(&query, &ProtocolParams::new(kind));
            assert!(
                plan.undeclared_exposures().is_empty(),
                "{}: {:?}",
                kind.name(),
                plan.undeclared_exposures()
            );
        }
    }

    #[test]
    fn basic_has_no_reduce_and_no_discovery() {
        let plan = PhasePlan::compile(&sfw_query(), &ProtocolParams::new(ProtocolKind::Basic));
        assert!(plan.reduce.is_none());
        assert!(plan.discovery.is_none());
        assert_eq!(plan.finalize.op, FinalizeOp::FilterRows);
        assert!(matches!(
            plan.finalize.partitioning,
            FinalizePartitioning::Random { chunk: 256 }
        ));
    }

    #[test]
    fn s_agg_reduces_randomly_to_a_single_batch() {
        let plan = PhasePlan::compile(&agg_query(), &ProtocolParams::new(ProtocolKind::SAgg));
        let reduce = plan.reduce.unwrap();
        assert_eq!(reduce.first, Partitioning::Random { chunk: 256 });
        assert_eq!(reduce.again, Partitioning::Random { chunk: 4 });
        assert_eq!(reduce.until, Until::SingleBatch);
        assert_eq!(reduce.retag, RetagMode::None);
        assert_eq!(plan.finalize.partitioning, FinalizePartitioning::Whole);
        assert_eq!(plan.collect.tag_policy, TagPolicy::None);
    }

    #[test]
    fn tag_protocols_reduce_per_tag_to_singletons() {
        for kind in [
            ProtocolKind::RnfNoise { nf: 3 },
            ProtocolKind::CNoise,
            ProtocolKind::EdHist { buckets: 4 },
        ] {
            let plan = PhasePlan::compile(&agg_query(), &ProtocolParams::new(kind));
            let reduce = plan.reduce.unwrap();
            assert_eq!(reduce.first, Partitioning::ByTag { chunk: 256 });
            assert_eq!(reduce.again, Partitioning::ByTag { chunk: 4 });
            assert_eq!(reduce.until, Until::TagSingletons);
            assert_eq!(reduce.retag, RetagMode::DetPerGroup);
            assert!(plan.discovery.is_some(), "{}", kind.name());
        }
    }

    #[test]
    fn ed_hist_buckets_at_collection_det_at_reduce() {
        let plan = PhasePlan::compile(
            &agg_query(),
            &ProtocolParams::new(ProtocolKind::EdHist { buckets: 7 }),
        );
        assert_eq!(plan.collect.tag_policy, TagPolicy::Bucket);
        assert_eq!(plan.reduce.unwrap().retag_form(), TagForm::Det);
        assert_eq!(
            plan.discovery,
            Some(DiscoveryNeed::Histogram { buckets: 7 })
        );
    }

    #[test]
    fn alpha_and_chunk_are_clamped() {
        let mut params = ProtocolParams::new(ProtocolKind::SAgg);
        params.chunk = 0;
        params.alpha = 0;
        let plan = PhasePlan::compile(&agg_query(), &params);
        let reduce = plan.reduce.unwrap();
        assert_eq!(reduce.first, Partitioning::Random { chunk: 1 });
        assert_eq!(reduce.again, Partitioning::Random { chunk: 2 });
    }

    #[test]
    fn mislabeled_plan_reports_undeclared_exposure() {
        let mut plan = PhasePlan::compile(&agg_query(), &ProtocolParams::new(ProtocolKind::SAgg));
        plan.collect.tag_policy = TagPolicy::DetPerGroup;
        assert_eq!(
            plan.undeclared_exposures(),
            vec![(Phase::Collection, TagForm::Det)]
        );
    }

    #[test]
    fn with_dest_redirects_finalize_only() {
        let plan = PhasePlan::compile(&agg_query(), &ProtocolParams::new(ProtocolKind::SAgg))
            .with_dest(ResultDest::Tds);
        assert_eq!(plan.finalize.dest, ResultDest::Tds);
        assert_eq!(plan.finalize.op, FinalizeOp::FinalizeGroups);
    }

    #[test]
    fn every_phase_requires_exactly_once_settlement() {
        for kind in ALL_KINDS {
            let query = if kind == ProtocolKind::Basic {
                sfw_query()
            } else {
                agg_query()
            };
            let plan = PhasePlan::compile(&query, &ProtocolParams::new(kind));
            let reqs = plan.idempotence_requirements();
            let phases: Vec<Phase> = reqs.iter().map(|r| r.phase).collect();
            let mut expected = Vec::new();
            if plan.discovery.is_some() {
                expected.push(Phase::Discovery);
            }
            expected.push(Phase::Collection);
            if plan.reduce.is_some() {
                expected.push(Phase::Aggregation);
            }
            expected.push(Phase::Filtering);
            assert_eq!(phases, expected, "{}", kind.name());
            for r in reqs {
                assert!(
                    r.replayable_compute,
                    "{}: {:?} compute replays",
                    kind.name(),
                    r.phase
                );
                assert!(
                    r.dedup_required,
                    "{}: {:?} outputs must dedup",
                    kind.name(),
                    r.phase
                );
            }
        }
    }

    #[test]
    fn emissions_track_phases_tags_and_pads() {
        for kind in ALL_KINDS {
            let query = if kind == ProtocolKind::Basic {
                sfw_query()
            } else {
                agg_query()
            };
            let plan = PhasePlan::compile(&query, &ProtocolParams::new(kind));
            let emissions = plan.emissions();
            // Phase order mirrors idempotence_requirements.
            let phases: Vec<Phase> = emissions.iter().map(|e| e.phase).collect();
            let contract: Vec<Phase> = plan
                .idempotence_requirements()
                .iter()
                .map(|r| r.phase)
                .collect();
            assert_eq!(phases, contract, "{}", kind.name());
            // Tags per phase mirror exposed_forms (discovery is an S_Agg
            // sub-run, always untagged).
            for e in &emissions {
                let want = match e.phase {
                    Phase::Discovery => TagForm::None,
                    _ => {
                        plan.exposed_forms()
                            .into_iter()
                            .find(|(p, _)| *p == e.phase)
                            .unwrap()
                            .1
                    }
                };
                assert_eq!(e.tag, want, "{}: {:?}", kind.name(), e.phase);
            }
            // Uploads that carry raw tuple content are padded; batch/row
            // shapes are the declared exemptions.
            for e in emissions {
                match e.codec {
                    EmissionCodec::PlainTuple | EmissionCodec::AggInput => {
                        assert_eq!(e.pad, Some(64), "{}: {:?}", kind.name(), e.phase)
                    }
                    EmissionCodec::PartialBatch | EmissionCodec::ResultRow => {
                        assert_eq!(e.pad, None, "{}: {:?}", kind.name(), e.phase)
                    }
                }
            }
        }
    }

    #[test]
    fn render_is_stable_per_protocol() {
        let text = PhasePlan::compile(&agg_query(), &ProtocolParams::new(ProtocolKind::SAgg))
            .render()
            .join("\n");
        assert!(text.contains("collect:   tag=none pad=64"), "{text}");
        assert!(text.contains("until single batch"), "{text}");
        let text = PhasePlan::compile(
            &agg_query(),
            &ProtocolParams::new(ProtocolKind::EdHist { buckets: 3 }),
        )
        .render()
        .join("\n");
        assert!(
            text.contains("discovery: distribution histogram (3 buckets)"),
            "{text}"
        );
        assert!(text.contains("tag=bucket"), "{text}");
    }
}
