//! Whole-protocol benchmarks: end-to-end wall time of each protocol on a
//! scaled-down population. Absolute numbers are laptop numbers, but the
//! *relative* costs mirror Fig. 10: noise-based protocols pay for their fake
//! tuples, S_Agg pays for its iterations, ED_Hist stays lean.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tdsql_core::access::AccessPolicy;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::workload::{smart_meters, SmartMeterConfig};
use tdsql_crypto::credential::Role;
use tdsql_sql::parser::parse_query;

fn bench_protocols(c: &mut Criterion) {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 200,
        districts: 8,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query = parse_query(
        "SELECT c.district, AVG(p.cons) FROM power p, consumer c \
                     WHERE c.cid = p.cid GROUP BY c.district",
    )
    .unwrap();

    let mut group = c.benchmark_group("protocol_end_to_end");
    group.sample_size(10);
    for kind in [
        ProtocolKind::SAgg,
        ProtocolKind::RnfNoise { nf: 2 },
        ProtocolKind::CNoise,
        ProtocolKind::EdHist { buckets: 4 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut world = SimBuilder::new()
                    .seed(1)
                    .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
                let querier = world.make_querier("q", "supplier");
                world
                    .run_query(&querier, &query, ProtocolParams::new(kind))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_collection_only(c: &mut Criterion) {
    // Collection-phase cost per TDS: local evaluation + encryption.
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 500,
        districts: 8,
        readings_per_tds: 1,
        ..Default::default()
    });
    let query =
        parse_query("SELECT c.district, COUNT(*) FROM consumer c GROUP BY c.district").unwrap();
    let mut group = c.benchmark_group("collection_phase");
    group.sample_size(10);
    group.bench_function("500_tds_s_agg", |b| {
        b.iter(|| {
            let mut world = SimBuilder::new()
                .seed(2)
                .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
            let querier = world.make_querier("q", "supplier");
            world
                .run_query(&querier, &query, ProtocolParams::new(ProtocolKind::SAgg))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_collection_only);
criterion_main!(benches);
