//! Personal queryboxes: queries directed at specific TDSs (Section 3.1's
//! "get the monthly energy consumption of consumer C").

mod common;

use common::assert_rows_eq;
use tdsql_core::access::AccessPolicy;
use tdsql_core::message::QueryTarget;
use tdsql_core::protocol::{ProtocolKind, ProtocolParams};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::stats::Phase;
use tdsql_core::workload::{smart_meters, SmartMeterConfig};
use tdsql_crypto::credential::Role;
use tdsql_sql::parser::parse_query;
use tdsql_sql::value::Value;

#[test]
fn targeted_query_reaches_only_its_tds() {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 30,
        districts: 3,
        readings_per_tds: 2,
        ..Default::default()
    });
    let mut world = SimBuilder::new()
        .seed(810)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");

    // Consumer 7's own consumption — a personal query.
    let query = parse_query("SELECT p.period, p.cons FROM power p ORDER BY 1").unwrap();
    let rows = world
        .run_query_targeted(
            &querier,
            &query,
            ProtocolParams::new(ProtocolKind::Basic),
            QueryTarget::Tds(vec![7]),
        )
        .unwrap();
    assert_eq!(rows.len(), 2, "two readings on meter 7");

    // Exactly one TDS participated in collection.
    let collection = world.stats.phase(Phase::Collection);
    assert_eq!(collection.participating_tds(), 1);
    assert!(collection.per_tds.contains_key(&7));
}

#[test]
fn targeted_aggregate_over_a_subset() {
    let (dbs, oracle) = smart_meters(&SmartMeterConfig {
        n_tds: 25,
        districts: 2,
        readings_per_tds: 1,
        ..Default::default()
    });
    let mut world = SimBuilder::new()
        .seed(811)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");

    // Aggregate over an explicit panel of consenting meters.
    let panel: Vec<u64> = vec![1, 3, 5, 7, 9];
    let query = parse_query("SELECT COUNT(*), SUM(p.cons) FROM power p").unwrap();
    let rows = world
        .run_query_targeted(
            &querier,
            &query,
            ProtocolParams::new(ProtocolKind::SAgg),
            QueryTarget::Tds(panel.clone()),
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(panel.len() as i64));

    // Reference: sum over exactly those meters' readings.
    let mut expected_sum = 0.0;
    for row in oracle.table("power").unwrap().rows() {
        if let (Value::Int(cid), Value::Float(cons)) = (&row[0], &row[1]) {
            if panel.contains(&(*cid as u64)) {
                expected_sum += cons;
            }
        }
    }
    match rows[0][1] {
        Value::Float(s) => assert!((s - expected_sum).abs() < 1e-9),
        ref other => panic!("{other:?}"),
    }

    // Only panel members were contacted.
    let collection = world.stats.phase(Phase::Collection);
    assert_eq!(collection.participating_tds(), panel.len());
    for id in collection.per_tds.keys() {
        assert!(panel.contains(id), "TDS {id} was not in the panel");
    }
}

#[test]
fn empty_target_produces_empty_result() {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 5,
        districts: 2,
        ..Default::default()
    });
    let mut world = SimBuilder::new()
        .seed(812)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let querier = world.make_querier("energy-co", "supplier");
    let query = parse_query("SELECT p.cons FROM power p").unwrap();
    let rows = world
        .run_query_targeted(
            &querier,
            &query,
            ProtocolParams::new(ProtocolKind::Basic),
            QueryTarget::Tds(vec![]),
        )
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn crowd_target_equals_plain_run() {
    let (dbs, _) = smart_meters(&SmartMeterConfig {
        n_tds: 12,
        districts: 2,
        ..Default::default()
    });
    let query =
        parse_query("SELECT c.district, COUNT(*) FROM consumer c GROUP BY c.district").unwrap();
    let mut w1 = SimBuilder::new()
        .seed(813)
        .build(dbs.clone(), AccessPolicy::allow_all(Role::new("supplier")));
    let q1 = w1.make_querier("q", "supplier");
    let a = w1
        .run_query(&q1, &query, ProtocolParams::new(ProtocolKind::SAgg))
        .unwrap();
    let mut w2 = SimBuilder::new()
        .seed(813)
        .build(dbs, AccessPolicy::allow_all(Role::new("supplier")));
    let q2 = w2.make_querier("q", "supplier");
    let b = w2
        .run_query_targeted(
            &q2,
            &query,
            ProtocolParams::new(ProtocolKind::SAgg),
            QueryTarget::Crowd,
        )
        .unwrap();
    assert_rows_eq(a, b, "crowd == default");
}
