//! The leakage lattice: how much an honest-but-curious observer learns from
//! one exposed representation of a value.
//!
//! Ordered by *protection* — lower elements leak more:
//!
//! ```text
//! Plaintext  <  KeyedHash  <  DetEnc  <  NDetEnc
//! ```
//!
//! * `Plaintext` — the value itself (only ever authorized for the SIZE
//!   bound, the signed credential, the protocol recipe and the routing
//!   target);
//! * `KeyedHash` — `h(bucketId)`: hides the value and the domain order, but
//!   equal inputs produce equal outputs *within one bucket mapping*
//!   (ED_Hist's first-step tags);
//! * `DetEnc` — `Det_Enc_k2(v)`: hides the value but exposes the exact
//!   equality pattern, hence frequencies (noise-protocol tags, ED_Hist's
//!   second-step tags);
//! * `NDetEnc` — `nDet_Enc(v)`: semantically secure, unlinkable ciphertexts
//!   (every tuple payload; the exposure floor of S_Agg).

/// One point of the leakage lattice. `Ord` follows protection strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Leakage {
    /// Cleartext.
    Plaintext,
    /// Keyed hash of a coarsened value (bucket id).
    KeyedHash,
    /// Deterministic encryption — equality pattern exposed.
    DetEnc,
    /// Non-deterministic encryption — semantically secure.
    NDetEnc,
}

impl Leakage {
    /// Combine two representations of (parts of) the same value: the
    /// adversary keeps whichever view leaks more, so the join of the
    /// information-flow lattice is the *minimum* protection.
    pub fn join(self, other: Leakage) -> Leakage {
        self.min(other)
    }

    /// Does this representation protect at least as strongly as `floor`?
    pub fn at_least(self, floor: Leakage) -> bool {
        self >= floor
    }

    /// Display name used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Leakage::Plaintext => "plaintext",
            Leakage::KeyedHash => "keyed-hash",
            Leakage::DetEnc => "Det_Enc",
            Leakage::NDetEnc => "nDet_Enc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_protection_strength() {
        assert!(Leakage::Plaintext < Leakage::KeyedHash);
        assert!(Leakage::KeyedHash < Leakage::DetEnc);
        assert!(Leakage::DetEnc < Leakage::NDetEnc);
    }

    #[test]
    fn join_keeps_the_leakier_view() {
        assert_eq!(Leakage::NDetEnc.join(Leakage::DetEnc), Leakage::DetEnc);
        assert_eq!(
            Leakage::Plaintext.join(Leakage::NDetEnc),
            Leakage::Plaintext
        );
        assert_eq!(
            Leakage::KeyedHash.join(Leakage::KeyedHash),
            Leakage::KeyedHash
        );
    }

    #[test]
    fn floors() {
        assert!(Leakage::NDetEnc.at_least(Leakage::DetEnc));
        assert!(!Leakage::KeyedHash.at_least(Leakage::DetEnc));
    }
}
