//! SQL substrate for the decentralized querying protocols.
//!
//! The paper's queriers issue queries of the form
//!
//! ```text
//! SELECT <attribute(s) and/or aggregate function(s)>
//! FROM <Table(s)>
//! [WHERE <condition(s)>]
//! [GROUP BY <grouping attribute(s)>]
//! [HAVING <grouping condition(s)>]
//! [SIZE <size condition(s)>]
//! ```
//!
//! This crate provides everything needed to parse and evaluate that dialect:
//!
//! * [`value`] — typed values, SQL NULL semantics, canonical encodings and
//!   [`value::GroupKey`]s (the `A_G` grouping keys shipped by the protocols);
//! * [`schema`] — the common schema all TDSs conform to;
//! * [`token`] / [`parser`] / [`ast`] — the SQL front end, including the
//!   StreamSQL-style `SIZE` clause;
//! * [`expr`] — three-valued expression evaluation;
//! * [`aggregate`] — mergeable partial aggregate states (the protocols' `⊕`),
//!   covering distributive, algebraic and holistic functions;
//! * [`engine`] — the per-TDS local engine (scan, filter, internal join,
//!   group-by), also used as the trusted single-node reference oracle.
//!
//! # Example
//!
//! ```
//! use tdsql_sql::engine::{execute, Database};
//! use tdsql_sql::parser::parse_query;
//! use tdsql_sql::schema::{Column, TableSchema};
//! use tdsql_sql::value::{DataType, Value};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new(
//!     "power",
//!     vec![Column::new("district", DataType::Str), Column::new("cons", DataType::Float)],
//! ));
//! db.insert("power", vec![Value::from("north"), Value::from(3.0)]).unwrap();
//! db.insert("power", vec![Value::from("north"), Value::from(5.0)]).unwrap();
//!
//! let q = parse_query("SELECT district, AVG(cons) FROM power GROUP BY district").unwrap();
//! let out = execute(&db, &q).unwrap();
//! assert_eq!(out.rows, vec![vec![Value::from("north"), Value::from(4.0)]]);
//! ```

#![warn(missing_docs)]
pub mod aggregate;
pub mod ast;
pub mod engine;
pub mod error;
pub mod expr;
pub mod order;
pub mod parser;
pub mod schema;
pub mod token;
pub mod value;

pub use ast::Query;
pub use error::SqlError;
pub use value::{DataType, GroupKey, Value};
