//! Server loops for the two service processes.
//!
//! Each server owns one in-process implementation of its service trait
//! ([`Ssi`] for `ssi-server`, [`LocalTdsPool`] for `tds-pool`) and exposes
//! it over the framed TCP protocol: accept loop, one thread per
//! connection, one request/response frame pair per round trip, until the
//! peer closes the connection.
//!
//! Privacy posture matches the obs layer's: servers log connection-level
//! counters (requests, bytes) and typed request names only — never
//! envelope contents, tuples or rows. All socket writes go through the
//! frame codec (enforced by the `no-raw-socket-write` srclint rule).

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use tdsql_core::error::Result;
use tdsql_core::service::{LocalTdsPool, SsiService, StepResult, TdsPool};
use tdsql_core::ssi::Ssi;
use tdsql_obs::{Field, Obs};

use crate::frame::{read_frame, write_frame, HEADER_LEN};
use crate::wire::{PoolRequest, PoolResponse, SsiRequest, SsiResponse};

/// Execute one decoded SSI request against the in-process ledger. All
/// outcomes (including typed protocol errors) become responses; nothing
/// here can fail except by producing an [`SsiResponse::Err`].
fn dispatch_ssi(req: SsiRequest, ssi: &Ssi) -> SsiResponse {
    fn wrap<T>(r: Result<T>, ok: impl FnOnce(T) -> SsiResponse) -> SsiResponse {
        match r {
            Ok(v) => ok(v),
            Err(e) => SsiResponse::Err(e),
        }
    }
    match req {
        SsiRequest::PostQuery(env) => wrap(SsiService::post_query(ssi, env), SsiResponse::Id),
        SsiRequest::Envelope(qid) => wrap(ssi.envelope(qid), SsiResponse::Envelope),
        SsiRequest::NewItem(qid) => wrap(ssi.new_item(qid), SsiResponse::Id),
        SsiRequest::BeginAssignment(qid, item) => {
            wrap(ssi.begin_assignment(qid, item), |a| SsiResponse::Id(a.0))
        }
        SsiRequest::ItemDone(qid, item) => wrap(ssi.item_done(qid, item), SsiResponse::Flag),
        SsiRequest::ReceiveCollection {
            query_id,
            assignment,
            tuples,
        } => wrap(
            ssi.receive_collection(query_id, assignment, tuples),
            SsiResponse::Outcome,
        ),
        SsiRequest::CollectionCount(qid) => {
            wrap(ssi.collection_count(qid), |n| SsiResponse::Count(n as u64))
        }
        SsiRequest::SizeTuplesReached(qid) => wrap(ssi.size_tuples_reached(qid), SsiResponse::Flag),
        SsiRequest::CloseCollection(qid) => wrap(ssi.close_collection(qid), |()| SsiResponse::Unit),
        SsiRequest::TakeWorking(qid) => wrap(ssi.take_working(qid), SsiResponse::Tuples),
        SsiRequest::RestoreWorking {
            query_id,
            phase,
            tuples,
        } => wrap(ssi.restore_working(query_id, phase, tuples), |()| {
            SsiResponse::Unit
        }),
        SsiRequest::ReceiveWorking {
            query_id,
            assignment,
            phase,
            tuples,
        } => wrap(
            ssi.receive_working(query_id, assignment, phase, tuples),
            SsiResponse::Outcome,
        ),
        SsiRequest::ReceiveResults {
            query_id,
            assignment,
            rows,
        } => wrap(
            ssi.receive_results(query_id, assignment, rows),
            SsiResponse::Outcome,
        ),
        SsiRequest::Results(qid) => wrap(ssi.results(qid), SsiResponse::Blobs),
        SsiRequest::PurgeQuery(qid) => wrap(ssi.purge_query(qid), |()| SsiResponse::Unit),
    }
}

/// Execute one decoded pool request against the in-process population.
fn dispatch_pool(req: PoolRequest, pool: &LocalTdsPool) -> PoolResponse {
    match req {
        PoolRequest::TdsIds => match pool.tds_ids() {
            Ok(ids) => PoolResponse::Ids(ids),
            Err(e) => PoolResponse::Err(e),
        },
        PoolRequest::Step {
            index,
            env,
            params,
            now_round,
            step,
            partition,
            rng_seed,
        } => match pool.step(
            index as usize,
            &env,
            &params,
            now_round,
            step,
            &partition,
            rng_seed,
        ) {
            Ok(StepResult::Working(ts)) => PoolResponse::Working(ts),
            Ok(StepResult::Results(bs)) => PoolResponse::Results(bs),
            Err(e) => PoolResponse::Err(e),
        },
        PoolRequest::OpenRows(blobs) => match pool.open_rows(&blobs) {
            Ok(rows) => PoolResponse::Rows(rows),
            Err(e) => PoolResponse::Err(e),
        },
    }
}

/// Per-connection frame loop, generic over the request/response pair.
/// Returns when the peer closes the connection or the transport fails;
/// emits one `net.conn.closed` obs event with aggregate counters.
fn serve_conn<Req, Resp>(
    mut stream: TcpStream,
    peer: &'static str,
    obs: &Obs,
    decode: impl Fn(&[u8]) -> Result<Req>,
    dispatch: impl Fn(Req) -> Resp,
    encode_err: impl Fn(tdsql_core::error::ProtocolError) -> Resp,
    encode: impl Fn(&Resp) -> Result<Vec<u8>>,
) {
    let mut requests: u64 = 0;
    let mut bytes_received: u64 = 0;
    let mut bytes_sent: u64 = 0;
    loop {
        // EOF at a frame boundary is the normal end of a session; any
        // other failure also just ends the connection (the client retries
        // on a fresh one and the driver absorbs the fault).
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => break,
        };
        requests += 1;
        bytes_received += (frame.len() + HEADER_LEN) as u64;
        // A malformed frame gets a typed error response — the connection
        // survives, mirroring how corrupted uploads are rejected-but-
        // retryable in the fault plan.
        let response = match decode(&frame) {
            Ok(req) => dispatch(req),
            Err(e) => encode_err(e),
        };
        let wire = match encode(&response) {
            Ok(w) => w,
            Err(_) => break,
        };
        bytes_sent += (wire.len() + HEADER_LEN) as u64;
        if write_frame(&mut stream, &wire).is_err() {
            break;
        }
    }
    obs.event(
        "net.conn.closed",
        None,
        vec![
            Field::str("peer", peer),
            Field::u64("requests", requests),
            Field::u64("bytes_received", bytes_received),
            Field::u64("bytes_sent", bytes_sent),
        ],
    );
}

/// Accept loop shared by both servers: one thread per connection, run
/// until the listener fails (e.g. is closed by the process shutting down).
fn accept_loop(
    listener: TcpListener,
    peer: &'static str,
    obs: Arc<Obs>,
    handle: impl Fn(TcpStream, Arc<Obs>) + Clone + Send + 'static,
) {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => break,
        };
        // Request/response framing: disable Nagle to keep round trips flat.
        let _ = stream.set_nodelay(true);
        obs.event("net.conn.accepted", None, vec![Field::str("peer", peer)]);
        let obs = Arc::clone(&obs);
        let handle = handle.clone();
        thread::spawn(move || handle(stream, obs));
    }
}

/// Serve the SSI ledger on `listener` until the listener fails. Spawns one
/// thread per accepted connection; call from a dedicated thread (the
/// `ssi-server` binary's main thread, or a test helper).
pub fn serve_ssi(listener: TcpListener, ssi: Arc<Ssi>, obs: Arc<Obs>) {
    accept_loop(listener, "ssi", obs, move |stream, obs| {
        let ssi = Arc::clone(&ssi);
        serve_conn(
            stream,
            "ssi",
            &obs,
            SsiRequest::decode,
            |req| dispatch_ssi(req, &ssi),
            SsiResponse::Err,
            SsiResponse::encode,
        );
    });
}

/// Serve a TDS population on `listener` until the listener fails. Same
/// threading model as [`serve_ssi`].
pub fn serve_pool(listener: TcpListener, pool: Arc<LocalTdsPool>, obs: Arc<Obs>) {
    accept_loop(listener, "tds-pool", obs, move |stream, obs| {
        let pool = Arc::clone(&pool);
        serve_conn(
            stream,
            "tds-pool",
            &obs,
            PoolRequest::decode,
            |req| dispatch_pool(req, &pool),
            PoolResponse::Err,
            PoolResponse::encode,
        );
    });
}
