//! The lint rule registry.
//!
//! Each rule is a [`LintRule`] implementation over a [`FileCtx`] — the
//! masked source, the token stream and the test-module mask produced by
//! [`super::tokens`]. Rules are registered in [`registry`]; the `srclint`
//! binary prints the catalogue from the same list, so a rule cannot exist
//! without being documented.

use super::tokens::{Token, TokenKind};
use super::Finding;

/// Everything a rule may inspect about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path (used for rule scoping and reporting).
    pub path: &'a str,
    /// Raw source lines (findings report these, so allowlist fragments
    /// match what the author wrote).
    pub raw_lines: Vec<&'a str>,
    /// Masked source lines: comments blanked, literal contents blanked.
    pub code_lines: Vec<String>,
    /// Tokens of each line.
    pub line_tokens: Vec<Vec<Token>>,
    /// True for lines inside `#[cfg(test)]` modules (skipped by all rules).
    pub in_test: Vec<bool>,
}

impl FileCtx<'_> {
    /// Non-test source lines: (0-based index, masked text, tokens).
    pub fn code(&self) -> impl Iterator<Item = (usize, &str, &[Token])> {
        self.code_lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.in_test[*i])
            .map(|(i, l)| (i, l.as_str(), self.line_tokens[i].as_slice()))
    }

    /// Build a finding for line `idx` (0-based), reporting the raw text.
    pub fn finding(&self, rule: &'static str, idx: usize) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line: idx + 1,
            text: self.raw_lines.get(idx).map_or("", |l| l.trim()).to_string(),
        }
    }
}

/// One lint rule: a name (stable, used in `srclint.allow`), a one-line
/// description for the catalogue, and a check over one file.
pub trait LintRule {
    /// Stable rule id, e.g. `no-panic-path`.
    fn name(&self) -> &'static str;
    /// One-line description for `srclint --rules`.
    fn description(&self) -> &'static str;
    /// Append findings for this file.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>);
}

/// All rules, in catalogue order.
pub fn registry() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(NoPanicPath),
        Box::new(CtCompare),
        Box::new(NoDebugKeys),
        Box::new(NoNondetRng),
        Box::new(NoRawPrint),
        Box::new(NoGlobalMutexVec),
        Box::new(NoNarrowingCast),
        Box::new(NoUndeclaredObsField),
        Box::new(NoRawSocketWrite),
    ]
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

fn is_hot_path(path: &str) -> bool {
    path.contains("core/src/protocol/")
        || path.contains("core/src/runtime/")
        || path.ends_with("core/src/plan.rs")
        || path.ends_with("core/src/tds.rs")
        || path.ends_with("core/src/ssi.rs")
}

fn is_crypto(path: &str) -> bool {
    path.contains("crypto/src/")
}

const DETERMINISTIC_CRYPTO: &[&str] = &[
    "det.rs",
    "bucket_hash.rs",
    "kdf.rs",
    "sha256.rs",
    "hmac.rs",
    "aes.rs",
    "ctr.rs",
];

fn is_deterministic_crypto(path: &str) -> bool {
    is_crypto(path)
        && DETERMINISTIC_CRYPTO
            .iter()
            .any(|f| path.ends_with(&format!("crypto/src/{f}")))
}

/// Paths where raw console output is forbidden: everything a protocol value
/// flows through. `tdsql-obs` is the only sanctioned sink there.
fn is_print_scope(path: &str) -> bool {
    path.contains("core/src/") || path.contains("bench/src/")
}

/// Paths where a shared `Mutex<Vec<…>>` accumulator is forbidden: the
/// runtime interpreters, whose scalability depends on worker-local output
/// buffers and sharded queues.
fn is_runtime_scope(path: &str) -> bool {
    path.contains("core/src/runtime/")
}

/// Integration-test sources (`crates/*/tests/`): exempt from the counter
/// and cast rules, which police wire formats, not test scaffolding.
fn is_test_source(path: &str) -> bool {
    path.contains("/tests/")
}

/// The network layer outside the frame codec. `frame.rs` is the single
/// module allowed to touch a socket directly; everything else in
/// `net/src/` must go through it.
fn is_net_nonframe(path: &str) -> bool {
    path.contains("net/src/") && !path.ends_with("net/src/frame.rs")
}

/// Lowercased `_`-separated sub-words of an identifier, plus the whole
/// identifier itself: `expected_mac` → {expected, mac, expected_mac}. This
/// is what lets rules match `mac` in `expected_mac` without tripping on
/// `macro_like` (whose sub-words are `macro` and `like`).
fn subwords(ident: &str) -> Vec<String> {
    let lower = ident.to_ascii_lowercase();
    let mut out: Vec<String> = lower.split('_').map(str::to_string).collect();
    out.push(lower);
    out.retain(|w| !w.is_empty());
    out
}

fn ident_matches(tok: &Token, words: &[&str]) -> bool {
    tok.kind == TokenKind::Ident
        && subwords(&tok.text)
            .iter()
            .any(|w| words.contains(&w.as_str()))
}

// ---------------------------------------------------------------------------
// no-panic-path
// ---------------------------------------------------------------------------

/// No `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!` or
/// `unimplemented!` in protocol hot paths: a panicking TDS drops out of a
/// round and the SSI observes the failure pattern; hot paths must return
/// typed `ProtocolError`s instead.
struct NoPanicPath;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl LintRule for NoPanicPath {
    fn name(&self) -> &'static str {
        "no-panic-path"
    }
    fn description(&self) -> &'static str {
        "no unwrap/expect/panic in protocol hot paths \
         (core/src/protocol, core/src/runtime, plan.rs, tds.rs, ssi.rs)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_hot_path(ctx.path) {
            return;
        }
        for (idx, _, toks) in ctx.code() {
            let hit = toks.windows(2).any(|w| {
                let (a, b) = (&w[0], &w[1]);
                a.kind == TokenKind::Ident
                    && ((PANIC_MACROS.contains(&a.text.as_str())
                        && b.kind == TokenKind::Punct
                        && b.text == "!")
                        || (PANIC_METHODS.contains(&a.text.as_str())
                            && b.kind == TokenKind::Punct
                            && b.text == "("))
            });
            if hit {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ct-compare
// ---------------------------------------------------------------------------

/// No `==`/`!=` on MAC, digest or signature values — anywhere in the
/// workspace, not just `crypto/src/`: verification must go through the
/// constant-time `tdsql_crypto::hmac::ct_eq`. A variable-time comparison
/// outside the crypto crate (an SSI-side credential check, a bench
/// validator) leaks the same timing signal the crypto-side rule exists to
/// prevent.
struct CtCompare;

const COMPARE_SENSITIVE: &[&str] = &["mac", "hmac", "digest", "signature"];

impl LintRule for CtCompare {
    fn name(&self) -> &'static str {
        "ct-compare"
    }
    fn description(&self) -> &'static str {
        "MAC/digest/signature comparison must use ct_eq (workspace-wide)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (idx, _, toks) in ctx.code() {
            let has_cmp = toks
                .iter()
                .any(|t| t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!="));
            if !has_cmp {
                continue;
            }
            if toks
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "ct_eq")
            {
                continue;
            }
            if toks.iter().any(|t| ident_matches(t, COMPARE_SENSITIVE)) {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-debug-keys
// ---------------------------------------------------------------------------

/// No `#[derive(Debug)]` on crypto structs holding raw key bytes: a derived
/// `Debug` prints key material into logs (redact by hand, as `SymKey`
/// does).
struct NoDebugKeys;

impl LintRule for NoDebugKeys {
    fn name(&self) -> &'static str {
        "no-debug-keys"
    }
    fn description(&self) -> &'static str {
        "no derived Debug on structs holding raw key bytes (crypto/src)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_crypto(ctx.path) {
            return;
        }
        for (idx, line, toks) in ctx.code() {
            let derives_debug = line.contains("derive(")
                && toks
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == "Debug");
            if !derives_debug {
                continue;
            }
            // Scan the struct body that follows for raw key-byte fields.
            let mut body_depth = 0i32;
            let mut leaky = false;
            for k in (idx + 1)..ctx.code_lines.len().min(idx + 40) {
                let l = &ctx.code_lines[k];
                body_depth += l.matches('{').count() as i32;
                let key_field = ctx.line_tokens[k].iter().any(|t| {
                    t.kind == TokenKind::Ident && t.text.to_ascii_lowercase().contains("key")
                });
                if key_field && (l.contains("[u8") || l.contains("Vec<u8>")) {
                    leaky = true;
                }
                body_depth -= l.matches('}').count() as i32;
                if body_depth <= 0 && l.contains('}') {
                    break;
                }
            }
            if leaky {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-nondet-rng
// ---------------------------------------------------------------------------

/// No RNG use inside the deterministic crypto primitives: determinism there
/// is a correctness *and* a security contract (equal plaintexts must
/// produce equal tags).
struct NoNondetRng;

impl LintRule for NoNondetRng {
    fn name(&self) -> &'static str {
        "no-nondet-rng"
    }
    fn description(&self) -> &'static str {
        "no RNG inside deterministic crypto primitives \
         (det, bucket_hash, kdf, sha256, hmac, aes, ctr)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_deterministic_crypto(ctx.path) {
            return;
        }
        for (idx, _, toks) in ctx.code() {
            let hit = toks.iter().any(|t| {
                if t.kind != TokenKind::Ident {
                    return false;
                }
                let w = t.text.to_ascii_lowercase();
                w.contains("rng") || w == "random" || w == "gen_range"
            });
            if hit {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-raw-print
// ---------------------------------------------------------------------------

/// No `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` inside `core/src` or
/// `bench/src`: a raw console sink bypasses the redaction layer, so any
/// formatted value — Public or Sensitive — can leak. Telemetry must route
/// through `tdsql-obs`, whose field types make Sensitive plaintext
/// unrepresentable. The bench *binaries* print their reports to stdout by
/// design and are suppressed via `srclint.allow`.
struct NoRawPrint;

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

impl LintRule for NoRawPrint {
    fn name(&self) -> &'static str {
        "no-raw-print"
    }
    fn description(&self) -> &'static str {
        "no println/eprintln/print/eprint/dbg in core/src or bench/src — \
         telemetry goes through tdsql-obs (bench bins allowlisted)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_print_scope(ctx.path) {
            return;
        }
        for (idx, _, toks) in ctx.code() {
            let hit = toks.windows(2).any(|w| {
                w[0].kind == TokenKind::Ident
                    && PRINT_MACROS.contains(&w[0].text.as_str())
                    && w[1].kind == TokenKind::Punct
                    && w[1].text == "!"
            });
            if hit {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-global-mutex-vec
// ---------------------------------------------------------------------------

/// No `Mutex<Vec<…>>` inside `core/src/runtime/`: a single mutex-guarded
/// output vector is exactly the global funnel that serialized the threaded
/// runtime at 100k-TDS populations. Keep outputs worker-local (merged at
/// phase end) or behind sharded structures; per-shard `Mutex<VecDeque<…>>`
/// queues are fine and deliberately not matched (the pattern requires the
/// `<` right after `Vec`).
struct NoGlobalMutexVec;

impl LintRule for NoGlobalMutexVec {
    fn name(&self) -> &'static str {
        "no-global-mutex-vec"
    }
    fn description(&self) -> &'static str {
        "no Mutex<Vec<..>> accumulators in core/src/runtime — keep outputs \
         worker-local or sharded (Mutex<VecDeque> queues are fine)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_runtime_scope(ctx.path) {
            return;
        }
        for (idx, line, _) in ctx.code() {
            if line.contains("Mutex<Vec<") {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-narrowing-cast
// ---------------------------------------------------------------------------

/// No `as u8`/`as u16`/`as u32` on length-like expressions (identifiers
/// containing `len`, `count`, `size` or `entries` feeding the cast): a
/// narrowing cast on a length silently wraps — 65 536 values wrap a `u16`
/// counter to 0 and produce a *decodable-but-wrong* payload, the exact bug
/// class `ProtocolError::CounterOverflow` exists for. Counters crossing a
/// wire format must go through checked conversion (`u32::try_from(..)`),
/// or carry a reviewed `srclint.allow` entry citing the bound that makes
/// the cast safe.
struct NoNarrowingCast;

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32"];
const LENGTH_WORDS: &[&str] = &["len", "count", "size", "entries"];
/// Walking back from the `as`, stop at tokens that end the cast operand:
/// a new statement, argument, binding or closure head.
const OPERAND_STOPS: &[&str] = &[",", ";", "=", "|", "{", "}", "&&", "||"];
/// How far back an operand is searched (tokens, same line).
const OPERAND_WINDOW: usize = 8;

impl LintRule for NoNarrowingCast {
    fn name(&self) -> &'static str {
        "no-narrowing-cast"
    }
    fn description(&self) -> &'static str {
        "no `as u8/u16/u32` on length expressions — use try_from or a \
         reviewed srclint.allow entry citing the bound"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if is_test_source(ctx.path) {
            return;
        }
        for (idx, _, toks) in ctx.code() {
            for i in 0..toks.len() {
                let is_cast = toks[i].kind == TokenKind::Ident
                    && toks[i].text == "as"
                    && toks.get(i + 1).is_some_and(|t| {
                        t.kind == TokenKind::Ident && NARROW_TARGETS.contains(&t.text.as_str())
                    });
                if !is_cast {
                    continue;
                }
                let mut hit = false;
                let mut j = i;
                while j > 0 && i - j < OPERAND_WINDOW {
                    j -= 1;
                    let t = &toks[j];
                    if t.kind == TokenKind::Punct && OPERAND_STOPS.contains(&t.text.as_str()) {
                        break;
                    }
                    if ident_matches(t, LENGTH_WORDS) {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    out.push(ctx.finding(self.name(), idx));
                    break; // one finding per line
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-undeclared-obs-field
// ---------------------------------------------------------------------------

/// Obs field discipline at construction sites: the *public* constructors
/// (`Field::str`/`u64`/`i64`/`bool`) must not be fed identifiers that name
/// raw sensitive buffers (`plaintext`, `secret`, `blob`, `payload`,
/// `ciphertext`, `material`) — those belong in `Field::sensitive` — and
/// every `Field::sensitive` call must visibly pass a redactor, so the
/// digest happens before the value reaches a collector. The type system
/// enforces the redactor parameter; the lint catches the laundering
/// pattern where sensitive bytes are stringified first and smuggled
/// through a public constructor.
struct NoUndeclaredObsField;

const PUBLIC_CTORS: &[&str] = &["str", "u64", "i64", "bool"];
const RAW_BUFFER_WORDS: &[&str] = &[
    "plaintext",
    "secret",
    "blob",
    "payload",
    "ciphertext",
    "material",
];

impl LintRule for NoUndeclaredObsField {
    fn name(&self) -> &'static str {
        "no-undeclared-obs-field"
    }
    fn description(&self) -> &'static str {
        "public Field ctors must not take raw-buffer identifiers; \
         Field::sensitive must visibly pass a redactor"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (idx, _, toks) in ctx.code() {
            for i in 0..toks.len() {
                let is_field_ctor = toks[i].kind == TokenKind::Ident
                    && toks[i].text == "Field"
                    && toks.get(i + 1).is_some_and(|t| t.text == "::")
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident);
                if !is_field_ctor {
                    continue;
                }
                let ctor = toks[i + 2].text.as_str();
                let rest = &toks[i + 3..];
                let bad = if PUBLIC_CTORS.contains(&ctor) {
                    rest.iter().any(|t| ident_matches(t, RAW_BUFFER_WORDS))
                } else if ctor == "sensitive" {
                    !rest.iter().any(|t| {
                        t.kind == TokenKind::Ident
                            && t.text.to_ascii_lowercase().contains("redactor")
                    })
                } else {
                    false
                };
                if bad {
                    out.push(ctx.finding(self.name(), idx));
                    break; // one finding per line
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-raw-socket-write
// ---------------------------------------------------------------------------

/// No raw `write()`/`write_all()`/`flush()` calls in the network layer
/// outside `frame.rs`: the frame codec is the single sanctioned socket I/O
/// path — it is where `MAX_FRAME` bounds-checking, transport-typed errors
/// and the obs layer's byte accounting live. A raw socket write anywhere
/// else (client, server, binaries) can ship unframed — hence unredacted
/// and unaccounted — bytes to the honest-but-curious SSI. Payloads must go
/// through `write_frame`; `write!` into strings is fine (the `!` fences it
/// off from the call pattern this rule matches).
struct NoRawSocketWrite;

const RAW_SOCKET_METHODS: &[&str] = &["write", "write_all", "flush"];

impl LintRule for NoRawSocketWrite {
    fn name(&self) -> &'static str {
        "no-raw-socket-write"
    }
    fn description(&self) -> &'static str {
        "no raw write/write_all/flush in net/src outside frame.rs — \
         socket I/O goes through the frame codec (write_frame)"
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_net_nonframe(ctx.path) {
            return;
        }
        for (idx, _, toks) in ctx.code() {
            let hit = toks.windows(2).any(|w| {
                w[0].kind == TokenKind::Ident
                    && RAW_SOCKET_METHODS.contains(&w[0].text.as_str())
                    && w[1].kind == TokenKind::Punct
                    && w[1].text == "("
            });
            if hit {
                out.push(ctx.finding(self.name(), idx));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lint_file;

    #[test]
    fn narrowing_cast_on_length_flagged() {
        let src = "fn f(s: &[u8], out: &mut Vec<u8>) {\n    \
                   out.extend_from_slice(&(s.len() as u32).to_be_bytes());\n}\n";
        let f = lint_file("crates/sql/src/value.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-narrowing-cast");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn widening_and_non_length_casts_pass() {
        // u64 is not narrowing; `i` is not a length; a closure head (`|`)
        // fences the operand off from a length-word further left.
        let widen = "let n = s.len() as u64;\n";
        assert!(lint_file("crates/sql/src/value.rs", widen).is_empty());
        let counter = "let ctr = base.wrapping_add(i as u32);\n";
        assert!(lint_file("crates/crypto/src/lib.rs", counter).is_empty());
        let fenced = "let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();\n";
        assert!(lint_file("crates/crypto/src/lib.rs", fenced).is_empty());
        let modexpr = "let b = (h % self.n_buckets as u64) as u32;\n";
        assert!(lint_file("crates/core/src/histogram.rs", modexpr).is_empty());
    }

    #[test]
    fn narrowing_cast_skips_integration_tests() {
        let src = "let rows = table.entries.len() as u32;\n";
        assert!(lint_file("crates/exposure/tests/proptest_exposure.rs", src).is_empty());
        assert_eq!(lint_file("crates/exposure/src/model.rs", src).len(), 1);
    }

    #[test]
    fn ct_compare_applies_workspace_wide() {
        let src = "fn v(mac: &[u8], other: &[u8]) -> bool {\n    mac == other\n}\n";
        let f = lint_file("crates/core/src/ssi.rs", src);
        assert!(f.iter().any(|x| x.rule == "ct-compare"), "{f:?}");
        // Sub-word matching: `expected_mac` is a MAC.
        let sub = "let ok = expected_mac != got;\n";
        assert_eq!(
            lint_file("crates/bench/src/lib.rs", sub)[0].rule,
            "ct-compare"
        );
        // ct_eq on the same line is the sanctioned fix.
        let ok = "let ok = ct_eq(&expected_mac, &got) == true;\n";
        assert!(lint_file("crates/bench/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn forbidden_tokens_in_strings_do_not_fire() {
        // A purely lexical scanner flags all three of these.
        let src = "fn f() {\n    let s = \"call .unwrap() or panic!( now\";\n    \
                   let r = r#\"println!(secret)\"#;\n    let c = '=';\n}\n";
        assert!(lint_file("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn public_obs_ctor_with_raw_buffer_ident_flagged() {
        let src = "fn f() {\n    let f = Field::str(\"sql\", plaintext_sql);\n}\n";
        let f = lint_file("crates/core/src/ssi.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-undeclared-obs-field");
        // Public values are fine through public ctors.
        let ok = "fn f() {\n    let f = Field::u64(\"bytes\", bytes);\n    \
                  let g = Field::str(\"phase\", phase.to_string());\n}\n";
        assert!(lint_file("crates/core/src/ssi.rs", ok).is_empty());
    }

    #[test]
    fn raw_socket_write_flagged_outside_frame_codec() {
        let src = "fn f(stream: &mut TcpStream, buf: &[u8]) {\n    \
                   stream.write_all(buf).unwrap();\n}\n";
        let f = lint_file("crates/net/src/client.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-raw-socket-write");
        assert_eq!(f[0].line, 2);
        let partial = "fn f(s: &mut TcpStream) {\n    let n = s.write(b\"x\").unwrap();\n}\n";
        assert_eq!(
            lint_file("crates/net/src/server.rs", partial)[0].rule,
            "no-raw-socket-write"
        );
        let flush = "fn f(s: &mut TcpStream) {\n    s.flush().unwrap();\n}\n";
        assert_eq!(
            lint_file("crates/net/src/bin/querier.rs", flush)[0].rule,
            "no-raw-socket-write"
        );
    }

    #[test]
    fn frame_codec_and_framed_writes_are_sanctioned() {
        // frame.rs is the single module allowed to touch the socket.
        let src = "fn f(s: &mut TcpStream, buf: &[u8]) {\n    s.write_all(buf).ok();\n}\n";
        assert!(lint_file("crates/net/src/frame.rs", src).is_empty());
        // write_frame is one identifier, not `write` + `(`.
        let framed = "fn f(s: &mut TcpStream, p: &[u8]) -> Result<()> {\n    \
                      write_frame(s, p)\n}\n";
        assert!(lint_file("crates/net/src/client.rs", framed).is_empty());
        // fmt's write! macro (the `!` fences it off) and other crates are
        // out of scope.
        let fmt = "fn f(out: &mut String) {\n    let _ = write!(out, \"x\");\n}\n";
        assert!(lint_file("crates/net/src/wire.rs", fmt).is_empty());
        assert!(lint_file("crates/obs/src/trace.rs", src).is_empty());
    }

    #[test]
    fn sensitive_field_must_pass_a_redactor() {
        let bad = "fn f() {\n    let f = Field::sensitive(\"tag\", digestish, data);\n}\n";
        let f = lint_file("crates/core/src/ssi.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-undeclared-obs-field");
        let ok = "fn f() {\n    let f = Field::sensitive(\"tag\", obs.redactor(), data);\n}\n";
        assert!(lint_file("crates/core/src/ssi.rs", ok).is_empty());
    }
}
