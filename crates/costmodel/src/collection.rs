//! Collection-phase duration model.
//!
//! The paper treats collection time as application-dependent ("the time to
//! collect the data is probably going to be quite large" for seldom-connected
//! tokens) and keeps it out of T_Q. This module models it anyway, because the
//! SIZE clause interacts with connectivity in a way worth quantifying:
//! with a fraction `p` of the population connecting (independently) each
//! round, coverage after `r` rounds is `1 − (1−p)^r`, so
//!
//! ```text
//! rounds to collect a fraction q of Nt answers:  r(q) = ln(1−q) / ln(1−p)
//! ```
//!
//! The round-based runtime samples exactly `p·Nt` distinct TDSs per round
//! (without replacement within a round), which matches this independence
//! model closely for small `p`; `tests/cost_model_consistency.rs` checks the
//! simulator against these predictions.

/// Expected rounds until a fraction `coverage` of the population has
/// contributed, with a fraction `p` connecting each round.
pub fn rounds_to_coverage(p: f64, coverage: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p) && p > 0.0,
        "connectivity fraction in (0,1]"
    );
    assert!((0.0..1.0).contains(&coverage), "coverage in [0,1)");
    if p >= 1.0 {
        return 1.0;
    }
    ((1.0 - coverage).ln() / (1.0 - p).ln()).max(1.0)
}

/// Expected rounds for the SIZE clause to close the window: each TDS
/// contributes one answer, so `SIZE n` over a population `nt` is coverage
/// `n/nt`.
pub fn rounds_to_size(p: f64, nt: u64, size_tuples: u64) -> f64 {
    if size_tuples >= nt {
        // Full coverage: the geometric tail never quite reaches 1; cap at
        // the coupon-collector-like bound for practical purposes.
        return rounds_to_coverage(p, 0.999);
    }
    rounds_to_coverage(p, size_tuples as f64 / nt as f64)
}

/// Expected number of distinct contributors after `rounds` rounds.
pub fn expected_contributors(p: f64, nt: u64, rounds: u64) -> f64 {
    nt as f64 * (1.0 - (1.0 - p).powi(rounds as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_connectivity_collects_in_one_round() {
        assert_eq!(rounds_to_coverage(1.0, 0.9), 1.0);
        assert!(rounds_to_size(1.0, 1000, 500) <= 1.0 + 1e-9);
    }

    #[test]
    fn ten_percent_needs_about_seven_rounds_for_half() {
        // 1 − 0.9^r = 0.5 → r = ln 0.5 / ln 0.9 ≈ 6.58.
        let r = rounds_to_coverage(0.10, 0.5);
        assert!((r - 6.58).abs() < 0.01, "{r}");
    }

    #[test]
    fn coverage_is_monotone_in_rounds_and_p() {
        assert!(expected_contributors(0.1, 1000, 5) < expected_contributors(0.1, 1000, 10));
        assert!(expected_contributors(0.1, 1000, 5) < expected_contributors(0.3, 1000, 5));
        // After many rounds, nearly everyone.
        assert!(expected_contributors(0.1, 1000, 100) > 999.0 * 0.99);
    }

    #[test]
    fn size_below_population_closes_early() {
        let partial = rounds_to_size(0.2, 10_000, 1_000); // 10% coverage
        let full = rounds_to_size(0.2, 10_000, 10_000);
        assert!(partial < full);
        assert!(partial >= 1.0);
    }
}
