//! Typed trace fields: public values pass through, sensitive values exist
//! only as keyed digests.

use tdsql_crypto::hmac::HmacSha256;

/// Domain-separation label for the redaction key derivation.
const REDACTION_LABEL: &[u8] = b"tdsql-obs-redaction-v1";

/// Turns sensitive plaintext into a short keyed digest.
///
/// The key is derived from caller-provided material (typically the world's
/// master seed), so digests are stable within one deployment — the same
/// grouping value always redacts to the same token, which keeps traces
/// join-able for debugging — and unlinkable across deployments with
/// different keys.
#[derive(Clone)]
pub struct Redactor {
    key: [u8; 32],
}

impl Redactor {
    /// Derive a redaction key from `material` (any length).
    pub fn new(material: &[u8]) -> Self {
        Self {
            key: HmacSha256::mac(REDACTION_LABEL, material),
        }
    }

    /// The keyed digest of `plaintext`, rendered as 32 lowercase hex chars
    /// (the first 16 bytes of HMAC-SHA256).
    pub fn digest(&self, plaintext: &[u8]) -> String {
        let mac = HmacSha256::mac(&self.key, plaintext);
        let mut out = String::with_capacity(32);
        for b in &mac[..16] {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }
}

impl std::fmt::Debug for Redactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the key.
        f.write_str("Redactor { .. }")
    }
}

/// A trace field value. There is deliberately no variant holding sensitive
/// plaintext: [`FieldValue::Digest`] is produced only by [`Redactor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A public string (phase names, protocol names, outcome labels).
    Str(String),
    /// A public unsigned count or size.
    U64(u64),
    /// A public signed value.
    I64(i64),
    /// A public flag.
    Bool(bool),
    /// The keyed digest of a sensitive value (hex, no plaintext).
    Digest(String),
}

/// Privacy class of a field, derivable from its value: every variant of
/// [`FieldValue`] is either public by construction or a keyed digest. The
/// static verifier's exposure pass and the `no-undeclared-obs-field` lint
/// police the *call sites*; this classification lets sinks and tests audit
/// assembled events without re-deriving the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// Carries public metadata (phase names, counts, flags).
    Public,
    /// Carries a keyed digest of sensitive plaintext; the plaintext itself
    /// never existed inside the field.
    Redacted,
}

/// One key/value pair attached to a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (static so field sets stay allocation-light and stable).
    pub key: &'static str,
    /// The value, already redacted if sensitive.
    pub value: FieldValue,
}

impl Field {
    /// A public string field.
    pub fn str(key: &'static str, value: impl Into<String>) -> Self {
        Self {
            key,
            value: FieldValue::Str(value.into()),
        }
    }

    /// A public unsigned field.
    pub fn u64(key: &'static str, value: u64) -> Self {
        Self {
            key,
            value: FieldValue::U64(value),
        }
    }

    /// A public signed field.
    pub fn i64(key: &'static str, value: i64) -> Self {
        Self {
            key,
            value: FieldValue::I64(value),
        }
    }

    /// A public boolean field.
    pub fn bool(key: &'static str, value: bool) -> Self {
        Self {
            key,
            value: FieldValue::Bool(value),
        }
    }

    /// A sensitive field: the plaintext is digested **here**, before the
    /// value ever reaches a collector or sink.
    pub fn sensitive(key: &'static str, redactor: &Redactor, plaintext: &[u8]) -> Self {
        Self {
            key,
            value: FieldValue::Digest(redactor.digest(plaintext)),
        }
    }

    /// The field's privacy class, decided by its value variant.
    pub fn class(&self) -> FieldClass {
        match self.value {
            FieldValue::Digest(_) => FieldClass::Redacted,
            FieldValue::Str(_) | FieldValue::U64(_) | FieldValue::I64(_) | FieldValue::Bool(_) => {
                FieldClass::Public
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_per_key_and_differs_across_keys() {
        let a = Redactor::new(b"key-a");
        let b = Redactor::new(b"key-b");
        assert_eq!(a.digest(b"secret"), a.digest(b"secret"));
        assert_ne!(a.digest(b"secret"), b.digest(b"secret"));
        assert_ne!(a.digest(b"secret"), a.digest(b"other"));
        assert_eq!(a.digest(b"secret").len(), 32);
    }

    #[test]
    fn sensitive_field_holds_no_plaintext() {
        let r = Redactor::new(b"key");
        let f = Field::sensitive("tag", &r, b"attr=diabetes");
        match &f.value {
            FieldValue::Digest(d) => {
                assert!(!d.contains("diabetes"));
                assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
            }
            other => panic!("expected digest, got {other:?}"),
        }
    }

    #[test]
    fn field_class_follows_the_value_variant() {
        let r = Redactor::new(b"key");
        assert_eq!(Field::u64("n", 1).class(), FieldClass::Public);
        assert_eq!(
            Field::str("phase", "collection").class(),
            FieldClass::Public
        );
        assert_eq!(Field::i64("d", -1).class(), FieldClass::Public);
        assert_eq!(Field::bool("ok", true).class(), FieldClass::Public);
        assert_eq!(
            Field::sensitive("tag", &r, b"attr=flu").class(),
            FieldClass::Redacted
        );
    }

    #[test]
    fn redactor_debug_hides_key() {
        let r = Redactor::new(b"top-secret-material");
        assert_eq!(format!("{r:?}"), "Redactor { .. }");
    }
}
