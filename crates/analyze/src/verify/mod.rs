//! `tdsql-analyze::verify` — the whole-plan static verifier.
//!
//! The paper's security argument rests on three invariants. The runtime
//! enforces each with guards and the chaos suite samples each with seeded
//! sweeps; this module *proves* them over the compiled [`PhasePlan`] IR,
//! before any ciphertext moves:
//!
//! * [`sizes`] — **size abstraction**: an abstract interpretation over every
//!   emission of the plan, computing per-phase plaintext-size intervals from
//!   the tuple-codec framing constants and proving each padded emission is a
//!   constant-size ciphertext envelope (or naming the phase and field that
//!   can leak length — the `PadTooSmall` class, caught statically);
//! * [`exposure`] — **exposure soundness**: the set of tag forms reachable
//!   in the plan (including the discovery sub-plan) must be a subset of the
//!   protocol's [`ExposureDeclaration`], with a lattice-typed counterexample
//!   trace when it is not;
//! * [`settle`] — **settle model checker**: a bounded, memoized DFS over the
//!   settle-ledger state machine exported by `tdsql_core::ssi`
//!   ([`SETTLE_TRANSITIONS`](tdsql_core::ssi::SETTLE_TRANSITIONS) ×
//!   [`WINDOW_GUARDS`](tdsql_core::ssi::WINDOW_GUARDS)), proving
//!   exactly-one-`Accepted` per work item and no double-count via
//!   `LateAfterReassign` across *every* delivery/reassign/close
//!   interleaving within the bound — the static counterpart of the chaos
//!   suite.
//!
//! [`report`] renders the three verdicts as a stable, machine-readable
//! report per protocol (`results/verify/*.json`, regenerated and checked by
//! the `verify` bin and CI).
//!
//! ## Soundness caveats
//!
//! * The size pass is sound relative to its [`sizes::WidthModel`]: string
//!   values wider than the modelled maximum raise the computed upper bound
//!   above the pad and are *reported*, not missed — but a deployment that
//!   pads for wider strings must widen the model to match.
//! * The settle pass is bounded: it proves the invariant for every
//!   interleaving within [`settle::ModelConfig`]'s item/assignment/delivery
//!   budget. The ledger is lock-striped per assignment and per item with no
//!   cross-item coupling, so the small bound covers the interesting
//!   interactions (duplicate, reassign, late, close races).
//! * Unpadded emissions (partial-aggregate batches, result rows) are
//!   *declared* exemptions, not oversights: their sizes depend only on
//!   group counts the SSI already learns from partitioning — the report
//!   records them as `declared-variable` rather than `constant`.
//!
//! [`PhasePlan`]: tdsql_core::plan::PhasePlan
//! [`ExposureDeclaration`]: tdsql_core::leakage::ExposureDeclaration

pub mod exposure;
pub mod report;
pub mod settle;
pub mod sizes;

use tdsql_core::plan::PhasePlan;
use tdsql_core::protocol::ProtocolParams;
use tdsql_sql::ast::Query;

/// Stable lowercase phase names used across findings and reports.
pub(crate) fn phase_name(phase: tdsql_core::stats::Phase) -> &'static str {
    match phase {
        tdsql_core::stats::Phase::Discovery => "discovery",
        tdsql_core::stats::Phase::Collection => "collection",
        tdsql_core::stats::Phase::Aggregation => "aggregation",
        tdsql_core::stats::Phase::Filtering => "filtering",
    }
}

/// The three pass results for one protocol, plus the overall verdict.
#[derive(Debug, Clone)]
pub struct Verification {
    /// The compiled plan the passes ran over.
    pub plan: PhasePlan,
    /// Pass 1: per-phase size intervals and the constant-size verdict.
    pub sizes: sizes::SizeReport,
    /// Pass 2: reachable tag forms vs. the declaration.
    pub exposure: exposure::ExposureReport,
    /// Pass 3: the settle-ledger model-checking result.
    pub settle: settle::SettleReport,
}

impl Verification {
    /// Did all three passes prove their invariant?
    pub fn verified(&self) -> bool {
        self.sizes.proven() && self.exposure.proven() && self.settle.proven()
    }
}

/// Run all three passes over one query + protocol configuration.
///
/// The settle pass is plan-independent (it checks the ledger tables the
/// runtime itself executes) but is run per verification so every report
/// carries the full verdict.
pub fn verify(query: &Query, params: &ProtocolParams) -> Verification {
    let plan = PhasePlan::compile(query, params);
    verify_plan(&plan, query, params)
}

/// Run all three passes over an already-compiled plan (the entry point the
/// negative tests use with hand-mutated plans).
pub fn verify_plan(plan: &PhasePlan, query: &Query, params: &ProtocolParams) -> Verification {
    Verification {
        plan: plan.clone(),
        sizes: sizes::check_plan(plan, query, params, &sizes::WidthModel::default()),
        exposure: exposure::check_plan(plan, query),
        settle: settle::check_ledger(&settle::ModelConfig::default()),
    }
}
