//! Credential lifetimes and the SSI-side histogram cache, end to end.

mod common;

use common::assert_rows_eq;
use tdsql_core::access::AccessPolicy;
use tdsql_core::histogram::Histogram;
use tdsql_core::protocol::{discovery, ProtocolKind, ProtocolParams};
use tdsql_core::runtime::SimBuilder;
use tdsql_core::workload::{health_survey, HealthConfig};
use tdsql_crypto::credential::Role;
use tdsql_sql::engine::execute;
use tdsql_sql::parser::parse_query;

const SQL: &str = "SELECT city, COUNT(*) FROM health GROUP BY city";

#[test]
fn expired_credentials_yield_dummies_only() {
    let (dbs, oracle) = health_survey(&HealthConfig {
        n_tds: 15,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let expected = execute(&oracle, &query).unwrap().rows;

    let mut world = SimBuilder::new()
        .seed(840)
        .build(dbs, AccessPolicy::allow_all(Role::new("physician")));

    // A credential that expires immediately: by the time any TDS opens the
    // query the round clock has advanced past it.
    let stale = world.make_querier_expiring("agency", "physician", 0);
    let rows = world
        .run_query(&stale, &query, ProtocolParams::new(ProtocolKind::SAgg))
        .unwrap();
    assert!(rows.is_empty(), "expired credential sees only dummies");

    // A long-lived credential works.
    let fresh = world.make_querier_expiring("agency", "physician", u64::MAX);
    let rows = world
        .run_query(&fresh, &query, ProtocolParams::new(ProtocolKind::SAgg))
        .unwrap();
    assert_rows_eq(rows, expected, "valid credential");
}

#[test]
fn histogram_round_trips_through_the_ssi_cache() {
    // The discovered distribution is sealed under k2 by a TDS, parked on the
    // SSI, and any other TDS can download and open it — the deployment path
    // for the "refreshed from time to time" histogram.
    let (dbs, _) = health_survey(&HealthConfig {
        n_tds: 20,
        ..Default::default()
    });
    let query = parse_query(SQL).unwrap();
    let mut world = SimBuilder::new()
        .seed(841)
        .build(dbs, AccessPolicy::allow_all(Role::new("physician")));

    let dist = discovery::discover_distribution(&mut world, &query).unwrap();
    let hist = Histogram::build(&dist, 2);

    // TDS 0 seals and uploads; the SSI stores an opaque blob.
    let mut rng = tdsql_crypto::rng::SeedableRng::seed_from_u64(1);
    let sealed = world.tdss[0].seal_histogram(&hist, &mut rng);
    assert!(
        !sealed.windows(4).any(|w| w == b"city" || w == b"Memp"),
        "sealed histogram must not leak group names"
    );
    world.ssi.put_cache("health/city/hist-v1", sealed);

    // TDS 7 downloads and opens it.
    let blob = world.ssi.get_cache("health/city/hist-v1").unwrap().clone();
    let opened = world.tdss[7].open_histogram(&blob).unwrap();
    assert_eq!(opened, hist);
    assert!(world.ssi.get_cache("no-such-entry").is_none());

    // And the opened histogram drives a correct ED_Hist run.
    let querier = world.make_querier("agency", "physician");
    let mut params = ProtocolParams::new(ProtocolKind::EdHist { buckets: 2 });
    params.histogram = Some(opened);
    let rows = world.run_query(&querier, &query, params).unwrap();
    let (_, oracle) = health_survey(&HealthConfig {
        n_tds: 20,
        ..Default::default()
    });
    assert_rows_eq(
        rows,
        execute(&oracle, &query).unwrap().rows,
        "cached histogram run",
    );
}
