//! # tdsql-costmodel — analytical cost model of the querying protocols
//!
//! Implements Section 6.1 of the paper: closed-form expressions for the four
//! metrics of interest —
//!
//! * **P_TDS** — TDSs participating in a query (parallelism),
//! * **Load_Q** — global resource consumption in bytes (scalability),
//! * **T_Q** — aggregation-phase response time (responsiveness),
//! * **T_local** — average per-TDS time (feasibility),
//!
//! for `S_Agg`, the noise-based protocols and `ED_Hist`, together with the
//! optimal reduction factors (α_op ≈ 3.6, n_NB = √((nf+1)·Nt/G), the
//! cube-root factors of ED_Hist) and the hardware calibration of Section 6.2
//! (120 MHz secure MCU, AES at 167 cycles/block, 7.9 Mbps link).
//!
//! The model mirrors the paper's equations; on top we add an explicit
//! **availability cap**: a phase needing more TDSs than are connected runs
//! in waves, which is how Fig. 10e/i/j (10%, 1%, 100% availability) differ.
//!
//! ```
//! use tdsql_costmodel::s_agg::SAggModel;
//! use tdsql_costmodel::ed_hist::EdHistModel;
//! use tdsql_costmodel::{ModelParams, ProtocolModel};
//!
//! // The paper's setting: Nt = 10⁶ smart meters, G = 10³ districts.
//! let p = ModelParams::default();
//! let s_agg = SAggModel.metrics(&p);
//! let ed = EdHistModel.metrics(&p);
//! assert!(s_agg.tq > 100.0 * ed.tq, "ED_Hist dominates responsiveness at large G");
//! assert!(s_agg.ptds < ed.ptds, "…but S_Agg mobilises far fewer TDSs");
//! ```

#![warn(missing_docs)]
pub mod capacity;
pub mod collection;
pub mod device;
pub mod ed_hist;
pub mod noise;
pub mod optimum;
pub mod paper_formulas;
pub mod params;
pub mod ranking;
pub mod s_agg;
pub mod sweep;

pub use device::DeviceProfile;
pub use params::{Metrics, ModelParams, ProtocolModel};
