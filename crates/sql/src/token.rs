//! SQL tokenizer for the paper's dialect.

use crate::error::{Result, SqlError};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are recognised in the
    /// parser; the tokenizer keeps the raw text).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (already unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if !next_is_digit(bytes, i + 1) => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (s, consumed) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i += consumed;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let (tok, consumed) = lex_number(input, i)?;
                tokens.push(tok);
                i += consumed;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| b.is_ascii_digit())
}

/// Lex a single-quoted string with `''` escaping. Returns (value, bytes consumed).
fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                s.push('\'');
                i += 2;
            } else {
                return Ok((s, i + 1 - start));
            }
        } else {
            // Keep UTF-8 intact: advance by full character.
            let ch = input[i..].chars().next().expect("valid utf8");
            s.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::Lex {
        position: start,
        message: "unterminated string literal".into(),
    })
}

/// Lex a number. Returns (token, bytes consumed).
fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' && next_is_digit(bytes, i + 1) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if next_is_digit(bytes, j) {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::Float(text.parse().map_err(|_| SqlError::Lex {
            position: start,
            message: format!("bad float literal {text:?}"),
        })?)
    } else {
        Token::Int(text.parse().map_err(|_| SqlError::Lex {
            position: start,
            message: format!("bad integer literal {text:?}"),
        })?)
    };
    Ok((tok, i - start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let toks = tokenize("SELECT AVG(Cons) FROM Power P WHERE P.cid >= 10").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(tokenize("2.5e-1").unwrap(), vec![Token::Float(0.25)]);
        // `1.e3` is Int(1) Dot Ident — we don't accept trailing dot floats.
        assert_eq!(
            tokenize("1.x").unwrap(),
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            tokenize("'detached house'").unwrap(),
            vec![Token::Str("detached house".into())]
        );
        assert_eq!(
            tokenize("'it''s'").unwrap(),
            vec![Token::Str("it's".into())]
        );
        assert_eq!(
            tokenize("'héllo'").unwrap(),
            vec![Token::Str("héllo".into())]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn operators() {
        let toks = tokenize("= != <> < <= > >= + - * / %").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT -- the projection\n1").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn bad_char_rejected() {
        assert!(matches!(tokenize("SELECT ;"), Err(SqlError::Lex { .. })));
    }
}
