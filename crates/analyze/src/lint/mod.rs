//! `srclint` — a token-aware privacy lint over the workspace sources.
//!
//! The protocols' security rests on a handful of source-level disciplines
//! that ordinary testing does not enforce. The lint lexes every workspace
//! source ([`tokens`]) into a comment- and literal-masked view plus a token
//! stream, and runs a registry of rules ([`rules`]) over both:
//!
//! * `no-panic-path` — no `unwrap()`, `expect()`, `panic!`, `unreachable!`,
//!   `todo!` or `unimplemented!` in protocol hot paths
//!   (`core/src/protocol/`, `core/src/runtime/`, `plan.rs`, `tds.rs`,
//!   `ssi.rs`): a panicking TDS drops out of a round and the SSI observes
//!   the failure pattern; hot paths must return typed [`ProtocolError`]s
//!   instead;
//! * `ct-compare` — no `==`/`!=` on MAC, digest or signature values
//!   anywhere in the workspace: verification must go through the
//!   constant-time `tdsql_crypto::hmac::ct_eq`;
//! * `no-debug-keys` — no `#[derive(Debug)]` on crypto structs holding raw
//!   key bytes: a derived `Debug` prints key material into logs (redact by
//!   hand, as `SymKey` does);
//! * `no-nondet-rng` — no RNG use inside the deterministic crypto
//!   primitives (`det.rs`, `bucket_hash.rs`, `kdf.rs`, `sha256.rs`,
//!   `hmac.rs`, `aes.rs`, `ctr.rs`): determinism there is a correctness
//!   *and* a security contract (equal plaintexts must produce equal tags);
//! * `no-raw-print` — no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!`
//!   inside `core/src/` or `bench/src/`: a raw console sink bypasses the
//!   redaction layer, so any formatted value — Public or Sensitive — can
//!   leak. Telemetry must route through `tdsql-obs`, whose field types make
//!   Sensitive plaintext unrepresentable. The bench *binaries* print their
//!   reports to stdout by design and are suppressed via `srclint.allow`;
//! * `no-global-mutex-vec` — no `Mutex<Vec<…>>` inside
//!   `core/src/runtime/`: a single mutex-guarded output vector is exactly
//!   the global funnel that serialized the threaded runtime at 100k-TDS
//!   populations;
//! * `no-narrowing-cast` — no `as u8`/`as u16`/`as u32` on length-like
//!   expressions: a wrapped counter produces a decodable-but-wrong wire
//!   payload (`ProtocolError::CounterOverflow` is the typed alternative);
//!   audited casts carry a reviewed `srclint.allow` entry citing the bound;
//! * `no-undeclared-obs-field` — public `Field` constructors must not be
//!   fed raw-buffer identifiers, and `Field::sensitive` must visibly pass
//!   a redactor: the redaction boundary is only worth what its call sites
//!   respect;
//! * `no-raw-socket-write` — no raw `write()`/`write_all()`/`flush()` in
//!   `net/src/` outside `frame.rs`: the frame codec is the single
//!   sanctioned socket I/O path, where `MAX_FRAME` bounds-checking,
//!   transport-typed errors and byte accounting live — an unframed write
//!   ships unaccounted bytes to the honest-but-curious SSI.
//!
//! Because rules run over the masked/tokenized view, a forbidden token
//! inside a comment, doc comment, string or char literal never fires — and
//! word-exact rules distinguish `mac` (flagged) from `macro_like` (not)
//! while still catching `expected_mac`.
//!
//! Findings can be suppressed through a checked-in allowlist (`srclint.allow`
//! at the workspace root): one finding per line, `rule path-fragment
//! line-fragment`, `#` comments allowed. Test modules (`#[cfg(test)]`) are
//! skipped entirely.
//!
//! [`ProtocolError`]: tdsql_core::error::ProtocolError

pub mod rules;
pub mod tokens;

use rules::FileCtx;
use tokens::Token;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.text
        )
    }
}

/// The checked-in suppression list.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parse the `srclint.allow` format: `rule path-fragment line-fragment`
    /// per line, `#` comments and blank lines ignored. The line fragment is
    /// the remainder of the line and may contain spaces.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            if let (Some(rule), Some(path), Some(frag)) = (parts.next(), parts.next(), parts.next())
            {
                entries.push((rule.to_string(), path.to_string(), frag.trim().to_string()));
            }
        }
        Self { entries }
    }

    /// Is this finding suppressed?
    pub fn permits(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|(rule, path, frag)| {
            rule == finding.rule
                && finding.file.contains(path.as_str())
                && finding.text.contains(frag.as_str())
        })
    }
}

/// Mark which lines belong to `#[cfg(test)]` modules (skipped by every
/// rule). Runs over the *masked* lines, so braces inside strings, chars or
/// comments cannot corrupt the depth count. Brace counting starts at the
/// `mod` line that follows the attribute.
fn test_block_mask(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() == "#[cfg(test)]" {
            // Find the mod line (attributes may stack).
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim().starts_with("#[") {
                j += 1;
            }
            if j < lines.len() && lines[j].trim_start().starts_with("mod ") {
                let mut depth = 0i32;
                let mut entered = false;
                let mut k = j;
                while k < lines.len() {
                    mask[k] = true;
                    depth += lines[k].matches('{').count() as i32;
                    depth -= lines[k].matches('}').count() as i32;
                    entered |= lines[k].contains('{');
                    // `mod tests;` (out-of-line module): nothing to mask.
                    if !entered && lines[k].contains(';') {
                        k += 1;
                        break;
                    }
                    k += 1;
                    if entered && depth <= 0 {
                        break;
                    }
                }
                mask[i] = true;
                i = k;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Lint one source file with every registered rule. `rel_path` is the
/// workspace-relative path (used for rule scoping and reporting).
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let scan = tokens::scan(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut code_lines: Vec<String> = scan.masked.lines().map(str::to_string).collect();
    // Masking preserves newlines 1:1, but guard the invariant anyway.
    code_lines.resize(raw_lines.len(), String::new());
    let mut line_tokens: Vec<Vec<Token>> = vec![Vec::new(); raw_lines.len()];
    for t in scan.tokens {
        if t.line < line_tokens.len() {
            line_tokens[t.line].push(t);
        }
    }
    let in_test = test_block_mask(&code_lines);
    let ctx = FileCtx {
        path: rel_path,
        raw_lines,
        code_lines,
        line_tokens,
        in_test,
    };
    let mut findings = Vec::new();
    for rule in rules::registry() {
        rule.check(&ctx, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_flagged_only_in_hot_paths() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        assert_eq!(
            lint_file("crates/core/src/protocol/discovery.rs", src).len(),
            1
        );
        assert_eq!(lint_file("crates/core/src/plan.rs", src).len(), 1);
        assert_eq!(lint_file("crates/core/src/tds.rs", src).len(), 1);
        assert!(lint_file("crates/core/src/workload.rs", src).is_empty());
        assert!(lint_file("crates/sql/src/parser.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        x.unwrap();\n    }\n}\n";
        assert!(lint_file("crates/core/src/ssi.rs", src).is_empty());
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// call .unwrap() here would panic!(\nfn f() {}\n";
        assert!(lint_file("crates/core/src/tds.rs", src).is_empty());
        // Block comments too — the old lexical scanner could not do this.
        let block = "/* spanning\n   x.unwrap();\n */\nfn f() {}\n";
        assert!(lint_file("crates/core/src/tds.rs", block).is_empty());
    }

    #[test]
    fn non_ct_mac_compare_flagged() {
        let src = "fn v(mac: &[u8], other: &[u8]) -> bool {\n    mac == other\n}\n";
        let f = lint_file("crates/crypto/src/hmac.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ct-compare");
        let ct = "fn v(mac: &[u8], other: &[u8]) -> bool {\n    ct_eq(mac, other)\n}\n";
        assert!(lint_file("crates/crypto/src/hmac.rs", ct).is_empty());
    }

    #[test]
    fn macro_word_does_not_trip_mac_rule() {
        let src = "fn f() {\n    let macro_like = a == b;\n}\n";
        assert!(lint_file("crates/crypto/src/keys.rs", src).is_empty());
    }

    #[test]
    fn debug_derive_on_raw_key_bytes_flagged() {
        let src = "#[derive(Debug, Clone)]\npub struct Leaky {\n    key_bytes: [u8; 16],\n}\n";
        let f = lint_file("crates/crypto/src/keys.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-debug-keys");
        // SymKey-style: Debug derived but fields are a redacting type.
        let ok = "#[derive(Debug, Clone)]\npub struct Ring {\n    k1: SymKey,\n}\n";
        assert!(lint_file("crates/crypto/src/keys.rs", ok).is_empty());
    }

    #[test]
    fn rng_in_deterministic_primitive_flagged() {
        let src = "fn f(rng: &mut StdRng) {}\n";
        let f = lint_file("crates/crypto/src/det.rs", src);
        assert_eq!(f[0].rule, "no-nondet-rng");
        // ndet is *supposed* to draw randomness.
        assert!(lint_file("crates/crypto/src/ndet.rs", src).is_empty());
    }

    #[test]
    fn raw_prints_flagged_in_core_and_bench() {
        let src = "fn f() {\n    println!(\"tuple: {blob:?}\");\n}\n";
        let f = lint_file("crates/core/src/ssi.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-raw-print");
        let f = lint_file("crates/bench/src/des.rs", src);
        assert_eq!(f.len(), 1);
        // Out of scope: the analyzer's own CLI output and the obs console
        // sink (which only ever sees already-redacted fields).
        assert!(lint_file("crates/analyze/src/bin/srclint.rs", src).is_empty());
        assert!(lint_file("crates/obs/src/trace.rs", src).is_empty());
    }

    #[test]
    fn debug_macro_flagged_but_comments_spared() {
        let src = "fn f() {\n    dbg!(&working);\n}\n";
        let f = lint_file("crates/core/src/runtime/threaded.rs", src);
        assert!(f.iter().any(|x| x.rule == "no-raw-print"));
        let doc = "/// Use println! for nothing here.\nfn f() {}\n";
        assert!(lint_file("crates/core/src/plan.rs", doc).is_empty());
    }

    #[test]
    fn mutex_vec_flagged_only_in_runtime() {
        let src = "struct S {\n    collected: Mutex<Vec<StoredTuple>>,\n}\n";
        let f = lint_file("crates/core/src/runtime/threaded.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-global-mutex-vec");
        // Out of scope: the SSI's striped per-query state is allowed.
        assert!(lint_file("crates/core/src/ssi.rs", src).is_empty());
        // Sharded work queues are the sanctioned alternative.
        let queue = "struct Q {\n    shards: Vec<Mutex<VecDeque<FWorkItem>>>,\n}\n";
        assert!(lint_file("crates/core/src/runtime/threaded.rs", queue).is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_findings() {
        let allow = Allowlist::parse("# comment\nno-panic-path core/src/tds.rs x.unwrap()\n");
        let f = Finding {
            rule: "no-panic-path",
            file: "crates/core/src/tds.rs".into(),
            line: 2,
            text: "x.unwrap();".into(),
        };
        assert!(allow.permits(&f));
        let other = Finding {
            rule: "no-panic-path",
            file: "crates/core/src/ssi.rs".into(),
            line: 2,
            text: "x.unwrap();".into(),
        };
        assert!(!allow.permits(&other));
    }

    #[test]
    fn every_rule_has_a_unique_name_and_description() {
        let rules = rules::registry();
        assert_eq!(rules.len(), 9);
        let mut names: Vec<_> = rules.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9, "duplicate rule name");
        assert!(rules.iter().all(|r| !r.description().is_empty()));
    }
}
