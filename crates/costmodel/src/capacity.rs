//! System capacity: how many queries the infrastructure can sustain.
//!
//! Load_Q "reflects the scalability of the solution in terms of capacity of
//! the system to manage a large set of queries in parallel" (Section 6.1).
//! This module turns that into a number: the fleet's aggregate uplink
//! bandwidth divided by one query's byte load gives the sustainable query
//! throughput.

use crate::device::DeviceProfile;
use crate::params::{ModelParams, ProtocolModel};

/// Queries per hour the connected fleet can sustain for a protocol, assuming
/// the per-TDS link is the binding resource (it is: Fig. 9b shows transfer
/// dominating compute by an order of magnitude).
pub fn queries_per_hour(model: &dyn ProtocolModel, p: &ModelParams, device: &DeviceProfile) -> f64 {
    let load_bytes = model.metrics(p).load_bytes;
    if load_bytes <= 0.0 {
        return f64::INFINITY;
    }
    let fleet_bytes_per_second = p.available_tds() * device.link_bps / 8.0;
    fleet_bytes_per_second / load_bytes * 3600.0
}

/// Capacity table for the standard roster at one parameter point.
pub fn capacity_table(p: &ModelParams, device: &DeviceProfile) -> Vec<(String, f64)> {
    crate::sweep::roster()
        .iter()
        .map(|m| (m.name(), queries_per_hour(m.as_ref(), p, device)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::s_agg::SAggModel;

    #[test]
    fn s_agg_sustains_orders_of_magnitude_more_queries_than_noise() {
        let p = ModelParams::default();
        let d = DeviceProfile::default();
        let s_agg = queries_per_hour(&SAggModel, &p, &d);
        let r1000 = queries_per_hour(&NoiseModel::r1000(), &p, &d);
        assert!(
            s_agg > 100.0 * r1000,
            "S_Agg {s_agg:.0}/h vs R1000 {r1000:.0}/h"
        );
    }

    #[test]
    fn nation_scale_capacity_is_plausible() {
        // 10⁶ meters, 10% connected, 7.9 Mbps each: the fleet moves ~100 GB/s,
        // one S_Agg query costs ~28 MB → thousands of queries per second.
        let p = ModelParams::default();
        let d = DeviceProfile::default();
        let s_agg = queries_per_hour(&SAggModel, &p, &d);
        assert!(s_agg > 1e6, "{s_agg}");
        assert!(s_agg.is_finite());
    }

    #[test]
    fn table_covers_the_roster() {
        let table = capacity_table(&ModelParams::default(), &DeviceProfile::default());
        assert_eq!(table.len(), 5);
        assert!(table.iter().all(|(_, q)| *q > 0.0));
    }
}
