//! Partial-aggregation benchmarks: the `Ω ⊕ tup` / `Ω ⊕ Ω` operations that
//! dominate a TDS's CPU time during the aggregation phase, plus the wire
//! codec they travel through.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tdsql_core::tuple_codec::PartialAggBatch;
use tdsql_sql::aggregate::{AggSpec, AggState};
use tdsql_sql::ast::AggFunc;
use tdsql_sql::value::{GroupKey, Value};

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_update");
    for func in [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Variance,
        AggFunc::Median,
    ] {
        let spec = AggSpec {
            func,
            distinct: false,
        };
        group.bench_function(BenchmarkId::from_parameter(func.name()), |b| {
            b.iter_batched(
                || spec.init(),
                |mut st| {
                    for i in 0..64 {
                        st.update(black_box(&Value::Int(i))).unwrap();
                    }
                    st
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_merge");
    for func in [
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Variance,
        AggFunc::Median,
    ] {
        let spec = AggSpec {
            func,
            distinct: false,
        };
        let mut partial = spec.init();
        for i in 0..64 {
            partial.update(&Value::Int(i)).unwrap();
        }
        group.bench_function(BenchmarkId::from_parameter(func.name()), |b| {
            b.iter_batched(
                || spec.init(),
                |mut acc| {
                    for _ in 0..8 {
                        acc.merge(black_box(&partial)).unwrap();
                    }
                    acc
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_batch_codec(c: &mut Criterion) {
    let spec = AggSpec {
        func: AggFunc::Avg,
        distinct: false,
    };
    let entries: Vec<(GroupKey, Vec<AggState>)> = (0..64)
        .map(|g| {
            let mut st = spec.init();
            st.update(&Value::Int(g)).unwrap();
            (GroupKey::from_values(&[Value::Int(g)]), vec![st])
        })
        .collect();
    let batch = PartialAggBatch { entries };
    c.bench_function("batch/encode_64_groups", |b| {
        b.iter(|| black_box(&batch).encode());
    });
    let encoded = batch.encode();
    c.bench_function("batch/decode_64_groups", |b| {
        b.iter(|| PartialAggBatch::decode(black_box(&encoded)).unwrap());
    });
}

criterion_group!(benches, bench_update, bench_merge, bench_batch_codec);
criterion_main!(benches);
